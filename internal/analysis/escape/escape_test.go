package escape

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis/callgraph"
)

// analyzeFunc type-checks src, builds its call graph, and runs the
// escape analysis on the named function.
func analyzeFunc(t *testing.T, src, name string) *Info {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("a", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	g := callgraph.New([]*ast.File{f}, info, pkg)
	for _, n := range g.Nodes() {
		if n.Func != nil && strings.HasSuffix(n.Name(), name) {
			return Analyze(n, info)
		}
	}
	t.Fatalf("no function %q in graph", name)
	return nil
}

// kinds projects the non-exempt (heap, non-panic) sites to their kinds.
func heapKinds(info *Info) []Kind {
	var out []Kind
	for _, s := range info.Sites {
		if !s.Stack && !s.InPanic {
			out = append(out, s.Kind)
		}
	}
	return out
}

func TestPureArithmeticHasNoSites(t *testing.T) {
	info := analyzeFunc(t, `package a
func f(x, y int) int {
	z := x*y + 3
	if z > 10 {
		z -= x
	}
	for i := 0; i < 4; i++ {
		z += i
	}
	return z
}
`, "a.f")
	if len(info.Sites) != 0 {
		t.Fatalf("pure arithmetic produced sites: %+v", info.Sites)
	}
}

func TestNewStackVsEscaping(t *testing.T) {
	info := analyzeFunc(t, `package a
func local() int {
	p := new(int)
	*p = 4
	return *p
}
func leaked() *int {
	p := new(int)
	return p
}
`, "a.local")
	if len(info.Sites) != 1 || !info.Sites[0].Stack {
		t.Fatalf("non-escaping new should be a Stack site, got %+v", info.Sites)
	}
	info = analyzeFunc(t, `package a
func leaked() *int {
	p := new(int)
	return p
}
`, "a.leaked")
	if len(info.Sites) != 1 || info.Sites[0].Stack {
		t.Fatalf("returned new must be a heap site, got %+v", info.Sites)
	}
}

func TestMakeClassification(t *testing.T) {
	src := `package a
func constSlice() int {
	s := make([]int, 8)
	return len(s)
}
func varSlice(n int) int {
	s := make([]int, n)
	return len(s)
}
func mapAlloc() int {
	m := make(map[int]int)
	return len(m)
}
`
	if got := heapKinds(analyzeFunc(t, src, "a.constSlice")); len(got) != 0 {
		t.Errorf("constant-size local make should be stack-exempt, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.varSlice")); len(got) != 1 || got[0] != KindMake {
		t.Errorf("variable-size make must be a heap site, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.mapAlloc")); len(got) != 1 || got[0] != KindMake {
		t.Errorf("make(map) must be a heap site, got %v", got)
	}
}

func TestAppendIsAlwaysASite(t *testing.T) {
	info := analyzeFunc(t, `package a
func f(s []int, v int) []int {
	s = append(s, v)
	return s
}
`, "a.f")
	got := heapKinds(info)
	if len(got) != 1 || got[0] != KindAppend {
		t.Fatalf("append must be a heap site, got %+v", info.Sites)
	}
}

func TestInterfaceBoxing(t *testing.T) {
	src := `package a
func box(x int) any {
	var v any = x
	return v
}
func pointerShaped(p *int) any {
	var v any = p
	return v
}
func nilNoBox() any {
	var v any = nil
	return v
}
`
	if got := heapKinds(analyzeFunc(t, src, "a.box")); len(got) != 1 || got[0] != KindBox {
		t.Errorf("int-to-any must box, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.pointerShaped")); len(got) != 0 {
		t.Errorf("pointer-to-any fits the interface word, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.nilNoBox")); len(got) != 0 {
		t.Errorf("nil assignment must not box, got %v", got)
	}
}

func TestVariadicBoxing(t *testing.T) {
	info := analyzeFunc(t, `package a
import "fmt"
func f(x int) {
	fmt.Println("x =", x)
}
`, "a.f")
	var box, variadic bool
	for _, s := range info.Sites {
		if s.Stack || s.InPanic {
			continue
		}
		switch s.Kind {
		case KindBox:
			box = true
		case KindVariadic:
			variadic = true
		}
	}
	if !box || !variadic {
		t.Fatalf("fmt.Println(int) must report boxing and the variadic slice, got %+v", info.Sites)
	}
}

func TestEllipsisCallDoesNotReVariadic(t *testing.T) {
	info := analyzeFunc(t, `package a
import "fmt"
func f(args []any) {
	fmt.Println(args...)
}
`, "a.f")
	for _, s := range info.Sites {
		if s.Kind == KindVariadic {
			t.Fatalf("args... passes the slice through, got %+v", s)
		}
	}
}

func TestStringConcat(t *testing.T) {
	src := `package a
func dynamic(a, b string) string { return a + b }
func folded() string { return "a" + "b" }
`
	if got := heapKinds(analyzeFunc(t, src, "a.dynamic")); len(got) != 1 || got[0] != KindConcat {
		t.Errorf("dynamic concat must be a site, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.folded")); len(got) != 0 {
		t.Errorf("constant concat folds at compile time, got %v", got)
	}
}

func TestStringSliceConversions(t *testing.T) {
	src := `package a
func toBytes(s string) []byte { return []byte(s) }
func toString(b []byte) string { return string(b) }
`
	if got := heapKinds(analyzeFunc(t, src, "a.toBytes")); len(got) != 1 || got[0] != KindConcat {
		t.Errorf("[]byte(s) must be a site, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.toString")); len(got) != 1 || got[0] != KindConcat {
		t.Errorf("string(b) must be a site, got %v", got)
	}
}

func TestClosures(t *testing.T) {
	src := `package a
func capture(n int) func() int {
	return func() int { return n }
}
func iife(n int) int {
	return func() int { return n }()
}
func captureFree() func() int {
	return func() int { return 7 }
}
`
	if got := heapKinds(analyzeFunc(t, src, "a.capture")); len(got) != 1 || got[0] != KindClosure {
		t.Errorf("escaping capture must be a site, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.iife")); len(got) != 0 {
		t.Errorf("immediately-invoked literal stays on the stack, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.captureFree")); len(got) != 0 {
		t.Errorf("capture-free literal is a static function value, got %v", got)
	}
}

func TestSortSearchClosureIsTrusted(t *testing.T) {
	info := analyzeFunc(t, `package a
import "sort"
func f(steps []float64, c float64) int {
	return sort.Search(len(steps), func(i int) bool { return c <= steps[i] }) + 1
}
`, "a.f")
	if got := heapKinds(info); len(got) != 0 {
		t.Fatalf("sort.Search does not retain its closure, got %v (sites %+v)", got, info.Sites)
	}
}

func TestGoStatement(t *testing.T) {
	info := analyzeFunc(t, `package a
func f(ch chan int) {
	go func() { ch <- 1 }()
}
`, "a.f")
	got := heapKinds(info)
	if len(got) != 1 || got[0] != KindGo {
		t.Fatalf("go statement must be one site (closure subsumed), got %+v", info.Sites)
	}
}

func TestPanicPathExemption(t *testing.T) {
	info := analyzeFunc(t, `package a
import "fmt"
func f(kind int) int {
	switch kind {
	case 1:
		return 10
	default:
		panic(fmt.Sprintf("unknown kind %d", kind))
	}
}
`, "a.f")
	if len(info.Sites) == 0 {
		t.Fatal("panic argument should still report sites")
	}
	for _, s := range info.Sites {
		if !s.InPanic {
			t.Fatalf("site %+v should be marked InPanic", s)
		}
	}
	if got := heapKinds(info); len(got) != 0 {
		t.Fatalf("all sites are panic-path, got %v", got)
	}
}

func TestCompositeLiterals(t *testing.T) {
	src := `package a
type pt struct{ x, y int }
func value() int {
	p := pt{1, 2}
	return p.x
}
func escapingRef() *pt {
	return &pt{1, 2}
}
func localRef() int {
	p := &pt{1, 2}
	return p.x
}
func sliceLit() []int {
	return []int{1, 2, 3}
}
`
	if got := heapKinds(analyzeFunc(t, src, "a.value")); len(got) != 0 {
		t.Errorf("value literal copy must be exempt, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.escapingRef")); len(got) != 1 || got[0] != KindComposite {
		t.Errorf("returned &T{} must be a heap site, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.localRef")); len(got) != 0 {
		t.Errorf("local-only &T{} is stack-allocatable, got %v", got)
	}
	if got := heapKinds(analyzeFunc(t, src, "a.sliceLit")); len(got) != 1 || got[0] != KindComposite {
		t.Errorf("returned slice literal must be a heap site, got %v", got)
	}
}

func TestEscapePropagation(t *testing.T) {
	// q escapes via return; p := q ties p to q, so p's new is heap.
	info := analyzeFunc(t, `package a
func f() *int {
	p := new(int)
	q := p
	return q
}
`, "a.f")
	if len(info.Sites) != 1 || info.Sites[0].Stack {
		t.Fatalf("aliased-then-returned new must be heap, got %+v", info.Sites)
	}
}

func TestEscapeThroughUntrustedCall(t *testing.T) {
	info := analyzeFunc(t, `package a
func sink(p *int)
func f() {
	p := new(int)
	sink(p)
}
`, "a.f")
	if len(info.Sites) != 1 || info.Sites[0].Stack {
		t.Fatalf("value passed to an untrusted call must count as escaping, got %+v", info.Sites)
	}
}

func TestSitesAreInSourceOrder(t *testing.T) {
	info := analyzeFunc(t, `package a
func f(n int) []int {
	a := make([]int, n)
	b := make([]int, n)
	a = append(a, len(b))
	return a
}
`, "a.f")
	for i := 1; i < len(info.Sites); i++ {
		if info.Sites[i].Pos < info.Sites[i-1].Pos {
			t.Fatalf("sites out of source order: %+v", info.Sites)
		}
	}
	if len(info.Sites) < 3 {
		t.Fatalf("expected at least 3 sites, got %+v", info.Sites)
	}
}

func TestNilBodyIsEmpty(t *testing.T) {
	// A declared-but-not-defined function (assembly stub shape).
	info := analyzeFunc(t, `package a
func stub(x int) int
`, "a.stub")
	if len(info.Sites) != 0 {
		t.Fatalf("bodyless function has no sites, got %+v", info.Sites)
	}
}
