// Package escape is the allocation/escape layer of the bouquetvet
// analysis framework: an intraprocedural analysis that locates every
// construct in one function body that may allocate on the heap, and
// classifies which of those allocations the compiler can provably keep
// on the stack because the allocated value never escapes the function.
//
// It is the substrate for the allocbound analyzer, which enforces the
// repository's zero-allocation hot-path contracts (//bouquet:allocfree)
// statically — the same contracts the AllocsPerRun tests pin
// dynamically. The two pins are deliberately redundant: the dynamic
// test catches what the model misses, the static gate catches
// regressions on paths the benchmarks never drive.
//
// # Allocation sites
//
// A Site is one syntactic construct that may allocate:
//
//   - new(T) and &T{...} — pointer-producing allocations;
//   - composite literals — slice and map literals always reference heap
//     storage; struct/array value literals are copies and only allocate
//     when their address escapes;
//   - make — slices, maps, channels;
//   - append — may grow its backing array;
//   - interface boxing — a concrete non-pointer-shaped value converted
//     (explicitly or implicitly: assignment, call argument, return,
//     send, map store) to an interface type copies the value to the
//     heap; fmt-style ...any arguments are the canonical case;
//   - variadic calls — the implicit backing slice for the collected
//     arguments;
//   - string concatenation — non-constant + on strings builds a new
//     string; so do []byte/string/[]rune conversions;
//   - capturing closures — a func literal that captures enclosing
//     variables materializes a closure object;
//   - go statements — launching a goroutine allocates its stack.
//
// # Escape classification
//
// The analysis is flow-insensitive and conservative: a local escapes
// when its value is returned, sent on a channel, stored outside the
// function's locals (global, field, slice/map element, pointer target),
// captured by a function literal, or passed to any call — except
// builtins that retain nothing and a short list of trusted callees
// (sort.Search and friends) known not to retain their arguments.
// Assignments propagate escape backwards (if the destination escapes,
// so does the source), to a fixpoint.
//
// A pointer-producing site bound to a local that never escapes is
// marked Stack — provably stack-allocatable, exempt from the allocfree
// contract. Sites reachable only as panic(...) arguments are marked
// InPanic: a panicking path's allocation is irrelevant to steady-state
// budgets, so allocbound exempts those too.
package escape

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
)

// Kind classifies one allocation site.
type Kind int

const (
	// KindNew is new(T).
	KindNew Kind = iota
	// KindMake is make(slice/map/chan).
	KindMake
	// KindComposite is a composite literal (value, &T{...}, or
	// slice/map literal).
	KindComposite
	// KindAppend is an append call, which may grow its backing array.
	KindAppend
	// KindBox is a concrete value converted to an interface type.
	KindBox
	// KindConcat is non-constant string concatenation or an allocating
	// string conversion.
	KindConcat
	// KindClosure is a function literal that captures enclosing
	// variables.
	KindClosure
	// KindGo is a go statement (goroutine stack).
	KindGo
	// KindVariadic is the implicit argument slice of a non-ellipsis
	// variadic call.
	KindVariadic
)

var kindNames = [...]string{
	KindNew:       "new",
	KindMake:      "make",
	KindComposite: "composite literal",
	KindAppend:    "append may grow its backing array",
	KindBox:       "interface boxing",
	KindConcat:    "string concatenation",
	KindClosure:   "capturing closure",
	KindGo:        "goroutine launch",
	KindVariadic:  "variadic argument slice",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "allocation"
}

// A Site is one construct that may allocate.
type Site struct {
	// Pos locates the allocating expression or statement.
	Pos token.Pos
	// Kind classifies the allocation.
	Kind Kind
	// What is a short human-readable rendering for diagnostics
	// ("make([]int32, ...)", "boxing int into any").
	What string
	// Stack reports that the allocated value provably never escapes the
	// function, so the compiler keeps it on the stack: the site is
	// exempt from zero-allocation contracts.
	Stack bool
	// InPanic reports that the site sits inside a panic(...) argument:
	// it only allocates on a path that is already aborting.
	InPanic bool
}

// Info is the analysis result for one function body.
type Info struct {
	// Sites are the allocation sites in source order.
	Sites []Site

	escaped map[*types.Var]bool
}

// Escapes reports whether the local variable v's value may leave the
// function (returned, stored to the heap, sent, captured, or passed to
// an untrusted call).
func (i *Info) Escapes(v *types.Var) bool { return i.escaped[v] }

// noEscapeArgCallees lists external functions known not to retain their
// arguments: a closure passed to them can stay on the caller's stack
// and their arguments do not escape. Kept deliberately tiny — each
// entry is a compiler-verified fact about the stdlib.
var noEscapeArgCallees = map[string]bool{
	"sort.Search":         true,
	"sort.SearchInts":     true,
	"sort.SearchFloat64s": true,
	"sort.SearchStrings":  true,
}

// Analyze computes allocation sites and escape classification for the
// statements lexically owned by n (its body minus nested function
// literal bodies, which are their own call-graph nodes). It tolerates
// incomplete type information — missing entries degrade to the
// conservative answer, they never panic.
func Analyze(n *callgraph.Node, info *types.Info) *Info {
	a := &analysis{
		node:    n,
		info:    info,
		parents: map[ast.Node]ast.Node{},
		escaped: map[*types.Var]bool{},
		edges:   map[*types.Var][]*types.Var{},
	}
	if n.Body == nil {
		return &Info{escaped: a.escaped}
	}
	a.walk()
	a.seedEscapes()
	a.propagate()
	a.classify()
	return &Info{Sites: a.sites, escaped: a.escaped}
}

type analysis struct {
	node *callgraph.Node
	info *types.Info

	// parents maps every owned node to its syntactic parent, for
	// context classification (what consumes this allocation?).
	parents map[ast.Node]ast.Node
	// order is every owned node in depth-first source order; the
	// collection passes iterate it so Sites come out deterministic.
	order []ast.Node

	escaped  map[*types.Var]bool
	edges    map[*types.Var][]*types.Var // escape(dst) ⇒ escape(each src)
	worklist []*types.Var

	sites []Site
}

// walk records parent links and DFS order for the node's own syntax,
// skipping nested function literal bodies (their allocations belong to
// their own call-graph nodes).
func (a *analysis) walk() {
	var stack []ast.Node
	ast.Inspect(a.node.Body, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			a.parents[m] = stack[len(stack)-1]
		}
		a.order = append(a.order, m)
		if lit, ok := m.(*ast.FuncLit); ok && lit != a.node.Lit {
			// The literal expression is visible to its parent (it may
			// be a site); its body is another node's problem.
			return false
		}
		stack = append(stack, m)
		return true
	})
}

// localVar resolves an identifier to the local (or parameter) variable
// it names, nil for globals, fields, and unresolved names.
func (a *analysis) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	var v *types.Var
	if d, ok := a.info.Defs[id].(*types.Var); ok {
		v = d
	} else if u, ok := a.info.Uses[id].(*types.Var); ok {
		v = u
	}
	if v == nil || v.IsField() {
		return nil
	}
	// A variable declared outside this function (package-level, or a
	// capture from an enclosing function) is not a local.
	if fn := a.funcScopePos(); fn != token.NoPos && (v.Pos() < fn || v.Pos() >= a.node.Body.End()) {
		return nil
	}
	return v
}

func (a *analysis) funcScopePos() token.Pos {
	switch {
	case a.node.Decl != nil:
		return a.node.Decl.Pos()
	case a.node.Lit != nil:
		return a.node.Lit.Pos()
	}
	return token.NoPos
}

// pointerFree reports whether values of t contain no pointers: copying
// such a value out of the function cannot leak any local's storage.
func pointerFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString == 0 && u.Kind() != types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !pointerFree(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return pointerFree(u.Elem())
	}
	return false
}

// markEscape records that e's value leaves the function: the base local
// behind any selector/index/star/paren chain escapes. Escaping a copy
// of a pointer-free value (return *p with p *int) marks nothing — the
// copy cannot alias the local's storage.
func (a *analysis) markEscape(e ast.Expr) {
	if tv, ok := a.info.Types[e]; ok && tv.Type != nil && pointerFree(tv.Type) {
		return
	}
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if v := a.localVar(x); v != nil && !a.escaped[v] {
				a.escaped[v] = true
				a.worklist = append(a.worklist, v)
			}
			return
		default:
			return
		}
	}
}

// addEdge records that if dst escapes, src escapes too.
func (a *analysis) addEdge(dst ast.Expr, src ast.Expr) {
	dv := a.localVar(dst)
	if dv == nil {
		a.markEscape(src)
		return
	}
	// src: unwrap &x and x alike — both tie x's fate to dst's.
	var sv *types.Var
	se := ast.Unparen(src)
	if u, ok := se.(*ast.UnaryExpr); ok && u.Op == token.AND {
		se = ast.Unparen(u.X)
	}
	if id, ok := se.(*ast.Ident); ok {
		sv = a.localVar(id)
	}
	if sv == nil {
		return
	}
	a.edges[dv] = append(a.edges[dv], sv)
	if a.escaped[dv] {
		a.markEscape(se)
	}
}

// seedEscapes walks the owned syntax once, seeding the escaped set and
// the assignment edges.
func (a *analysis) seedEscapes() {
	for _, m := range a.order {
		switch m := m.(type) {
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				a.markEscape(r)
			}
		case *ast.SendStmt:
			a.markEscape(m.Value)
		case *ast.GoStmt:
			for _, arg := range m.Call.Args {
				a.markEscape(arg)
			}
			a.markEscape(m.Call.Fun)
		case *ast.DeferStmt:
			for _, arg := range m.Call.Args {
				a.markEscape(arg)
			}
		case *ast.AssignStmt:
			a.seedAssign(m)
		case *ast.ValueSpec:
			for i, name := range m.Names {
				if i < len(m.Values) {
					a.addEdge(name, m.Values[i])
				}
			}
		case *ast.CallExpr:
			a.seedCall(m)
		case *ast.FuncLit:
			// Captured variables' values outlive the enclosing frame if
			// the closure does; conservatively, any capture escapes.
			if m != a.node.Lit {
				for _, v := range a.captures(m) {
					if !a.escaped[v] {
						a.escaped[v] = true
						a.worklist = append(a.worklist, v)
					}
				}
			}
		}
	}
}

func (a *analysis) seedAssign(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			lhs, rhs := s.Lhs[i], s.Rhs[i]
			if a.localVar(lhs) == nil {
				// Stored outside the frame: global, field, element,
				// pointer target.
				a.markEscape(rhs)
				continue
			}
			// append(s, elems...): the result aliases s, and the
			// elements land in its backing array.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && a.isBuiltin(call, "append") {
				for _, arg := range call.Args {
					a.addEdge(lhs, arg)
				}
				continue
			}
			a.addEdge(lhs, rhs)
		}
		return
	}
	// x, y := f() — multi-value: nothing to tie variables to.
	_ = s
}

// seedCall marks arguments (and method receivers) of untrusted calls as
// escaping. Builtins retain nothing; the trusted list covers external
// callees proven not to retain arguments.
func (a *analysis) seedCall(call *ast.CallExpr) {
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if a.builtinName(call) != "" {
		// len/cap/copy/delete/clear/min/max retain nothing; append is
		// handled at its assignment; panic's argument escapes (but the
		// site exemption handles the aborting path).
		if a.isBuiltin(call, "panic") || a.isBuiltin(call, "print") || a.isBuiltin(call, "println") {
			for _, arg := range call.Args {
				a.markEscape(arg)
			}
		}
		return
	}
	if a.trustedNoEscape(call) {
		return
	}
	for _, arg := range call.Args {
		a.markEscape(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Method receiver: conservatively escapes (a pointer receiver
		// aliases the local).
		if _, ok := a.info.Uses[sel.Sel].(*types.Func); ok {
			a.markEscape(sel.X)
		}
	}
}

// propagate runs the escape worklist to fixpoint over assignment edges.
func (a *analysis) propagate() {
	for len(a.worklist) > 0 {
		v := a.worklist[len(a.worklist)-1]
		a.worklist = a.worklist[:len(a.worklist)-1]
		for _, src := range a.edges[v] {
			if !a.escaped[src] {
				a.escaped[src] = true
				a.worklist = append(a.worklist, src)
			}
		}
	}
}

// builtinName returns the name of the builtin a call invokes, "" for
// non-builtins.
func (a *analysis) builtinName(call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := a.info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	// panic/print parse as idents with Uses entries of *types.Builtin;
	// under incomplete type info fall back to the universe names.
	if a.info.Uses[id] == nil && types.Universe.Lookup(id.Name) != nil {
		if _, ok := types.Universe.Lookup(id.Name).(*types.Builtin); ok {
			return id.Name
		}
	}
	return ""
}

func (a *analysis) isBuiltin(call *ast.CallExpr, name string) bool {
	return a.builtinName(call) == name
}

// calleeFullName resolves a call to its static callee's qualified name
// ("sort.Search", "(*sync.Pool).Get"), "" when unresolved.
func (a *analysis) calleeFullName(call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = a.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = a.info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	if fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.FullName()
}

func (a *analysis) trustedNoEscape(call *ast.CallExpr) bool {
	return noEscapeArgCallees[a.calleeFullName(call)]
}

// captures returns the enclosing-function variables a literal's body
// references, in first-use order.
func (a *analysis) captures(lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := a.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared outside the literal but inside this
		// function (or any enclosing one — conservatively, any
		// non-package variable declared before the literal).
		if v.Pos() != token.NoPos && v.Pos() < lit.Pos() && !a.isPackageLevel(v) && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

func (a *analysis) isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// classify is the site-collection pass: it revisits the owned syntax in
// source order and records every allocating construct with its
// stack/panic exemptions.
func (a *analysis) classify() {
	for _, m := range a.order {
		switch m := m.(type) {
		case *ast.CallExpr:
			a.classifyCall(m)
		case *ast.CompositeLit:
			a.classifyComposite(m)
		case *ast.BinaryExpr:
			if m.Op == token.ADD && a.isStringType(m) && !a.isConstant(m) {
				a.add(m.Pos(), KindConcat, "string concatenation", false, a.inPanic(m))
			}
		case *ast.AssignStmt:
			if m.Tok == token.ADD_ASSIGN && len(m.Lhs) == 1 && a.isStringType(m.Lhs[0]) {
				a.add(m.Pos(), KindConcat, "string concatenation", false, a.inPanic(m))
			}
		case *ast.FuncLit:
			if m != a.node.Lit {
				a.classifyClosure(m)
			}
		case *ast.GoStmt:
			a.add(m.Pos(), KindGo, "starting a goroutine", false, false)
		}
	}
	// Implicit boxing at assignment/return/send boundaries.
	a.classifyBoxing()
}

func (a *analysis) classifyCall(call *ast.CallExpr) {
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		a.classifyConversion(call, tv.Type)
		return
	}
	switch a.builtinName(call) {
	case "new":
		bound := a.binding(call)
		stack := bound != nil && !a.escaped[bound]
		a.add(call.Pos(), KindNew, "new", stack, a.inPanic(call))
		return
	case "make":
		a.classifyMake(call)
		return
	case "append":
		a.add(call.Pos(), KindAppend, "append may grow its backing array", false, a.inPanic(call))
		return
	case "":
		// Not a builtin: fall through to signature checks.
	default:
		return // len, cap, copy, panic, ... allocate nothing themselves
	}
	sig := a.callSignature(call)
	if sig == nil {
		return
	}
	// Interface boxing of arguments, including fmt-style variadics.
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = sig.Params().At(np - 1).Type()
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		a.checkBox(arg, pt)
	}
	// The implicit backing slice of a non-ellipsis variadic call.
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
		a.add(call.Pos(), KindVariadic, "variadic call allocates its argument slice", false, a.inPanic(call))
	}
}

func (a *analysis) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := a.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func (a *analysis) classifyMake(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := a.info.Types[call.Args[0]]
	what, constSize := "make", true
	if ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			what = "make(map)"
			constSize = false
		case *types.Chan:
			what = "make(chan)"
			constSize = false
		case *types.Slice:
			what = "make(slice)"
			for _, arg := range call.Args[1:] {
				if !a.isConstant(arg) {
					constSize = false
				}
			}
		}
	} else {
		constSize = false
	}
	bound := a.binding(call)
	stack := constSize && bound != nil && !a.escaped[bound]
	a.add(call.Pos(), KindMake, what, stack, a.inPanic(call))
}

func (a *analysis) classifyConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if types.IsInterface(to.Underlying()) {
		a.checkBox(arg, to)
		return
	}
	from, ok := a.info.Types[arg]
	if !ok || from.Type == nil {
		return
	}
	fs, isFromString := from.Type.Underlying().(*types.Basic)
	toSlice, isToSlice := to.Underlying().(*types.Slice)
	toBasic, isToBasic := to.Underlying().(*types.Basic)
	switch {
	case isFromString && fs.Info()&types.IsString != 0 && isToSlice:
		// string -> []byte / []rune
		_ = toSlice
		a.add(call.Pos(), KindConcat, "string-to-slice conversion copies", false, a.inPanic(call))
	case isToBasic && toBasic.Info()&types.IsString != 0 && !a.isConstant(arg):
		if _, fromSlice := from.Type.Underlying().(*types.Slice); fromSlice {
			// []byte / []rune -> string
			a.add(call.Pos(), KindConcat, "slice-to-string conversion copies", false, a.inPanic(call))
		}
	}
}

// classifyComposite records composite-literal sites. The &T{...} form
// is attributed to the literal (the unary & is just its address).
func (a *analysis) classifyComposite(lit *ast.CompositeLit) {
	tv, ok := a.info.Types[lit]
	if !ok || tv.Type == nil {
		// Unknown type: conservative heap site.
		a.add(lit.Pos(), KindComposite, "composite literal", false, a.inPanic(lit))
		return
	}
	// Skip literals nested inside another literal — the outermost one
	// carries the site (its classification covers the storage).
	if _, ok := a.parents[lit].(*ast.CompositeLit); ok {
		if _, isRef := tv.Type.Underlying().(*types.Slice); !isRef {
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
		}
	}
	if kv, ok := a.parents[lit].(*ast.KeyValueExpr); ok {
		if _, ok := a.parents[kv].(*ast.CompositeLit); ok {
			if _, isRef := tv.Type.Underlying().(*types.Slice); !isRef {
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return
				}
			}
		}
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		bound := a.binding(lit)
		stack := bound != nil && !a.escaped[bound]
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			stack = false // map headers and buckets live on the heap
		}
		a.add(lit.Pos(), KindComposite, types.TypeString(tv.Type, nil)+" literal", stack, a.inPanic(lit))
		return
	}
	// Struct/array literal: a value copy unless its address is the
	// allocation (&T{...}) — then it behaves like new.
	if u, ok := a.parents[lit].(*ast.UnaryExpr); ok && u.Op == token.AND {
		bound := a.binding(u)
		stack := bound != nil && !a.escaped[bound]
		a.add(u.Pos(), KindComposite, "&"+types.TypeString(tv.Type, nil)+"{...}", stack, a.inPanic(u))
		return
	}
	// Plain value literal: stack unless boxed (boxing is its own site).
	a.add(lit.Pos(), KindComposite, types.TypeString(tv.Type, nil)+"{...} value", true, a.inPanic(lit))
}

func (a *analysis) classifyClosure(lit *ast.FuncLit) {
	caps := a.captures(lit)
	if len(caps) == 0 {
		return // a capture-free literal is a static function value
	}
	parent := a.parents[lit]
	stack := false
	switch p := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == ast.Expr(lit) {
			stack = true // immediately invoked
		} else if a.trustedNoEscape(p) {
			stack = true // callee proven not to retain the literal
		}
	case *ast.GoStmt:
		return // the KindGo site covers the launch
	}
	if !stack {
		if bound := a.binding(lit); bound != nil && !a.escaped[bound] {
			stack = true // local func value, called here only
		}
	}
	a.add(lit.Pos(), KindClosure, "closure captures variables", stack, a.inPanic(lit))
}

// classifyBoxing finds implicit interface conversions at assignment,
// declaration, return, and send boundaries (call arguments are handled
// per-call).
func (a *analysis) classifyBoxing() {
	results := a.resultTypes()
	for _, m := range a.order {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) != len(m.Rhs) {
				continue
			}
			for i := range m.Lhs {
				if lt, ok := a.info.Types[m.Lhs[i]]; ok && lt.Type != nil {
					a.checkBox(m.Rhs[i], lt.Type)
				}
			}
		case *ast.ValueSpec:
			for i, name := range m.Names {
				if i >= len(m.Values) {
					break
				}
				if nt, ok := a.info.Defs[name]; ok && nt != nil {
					a.checkBox(m.Values[i], nt.Type())
				}
			}
		case *ast.ReturnStmt:
			for i, r := range m.Results {
				if i < len(results) {
					a.checkBox(r, results[i])
				}
			}
		case *ast.SendStmt:
			if ct, ok := a.info.Types[m.Chan]; ok && ct.Type != nil {
				if ch, ok := ct.Type.Underlying().(*types.Chan); ok {
					a.checkBox(m.Value, ch.Elem())
				}
			}
		}
	}
}

func (a *analysis) resultTypes() []types.Type {
	var sig *types.Signature
	switch {
	case a.node.Func != nil:
		sig, _ = a.node.Func.Type().(*types.Signature)
	case a.node.Lit != nil:
		if tv, ok := a.info.Types[a.node.Lit]; ok && tv.Type != nil {
			sig, _ = tv.Type.Underlying().(*types.Signature)
		}
	}
	if sig == nil {
		return nil
	}
	out := make([]types.Type, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i).Type()
	}
	return out
}

// checkBox records a boxing site when expr's concrete, non-pointer-
// shaped value is converted to the interface type target.
func (a *analysis) checkBox(expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := a.info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if types.IsInterface(from.Underlying()) {
		return // interface-to-interface carries the word, no copy
	}
	if tv.IsNil() {
		return
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits the interface word
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	a.add(expr.Pos(), KindBox, "boxing "+types.TypeString(from, nil)+" into an interface", false, a.inPanic(expr))
}

// binding returns the local variable a site expression is directly
// bound to (x := site, var x = site, x = site), nil otherwise.
func (a *analysis) binding(site ast.Node) *types.Var {
	child := site
	parent := a.parents[child]
	for {
		if p, ok := parent.(*ast.ParenExpr); ok {
			child, parent = parent, a.parents[p]
			continue
		}
		break
	}
	switch p := parent.(type) {
	case *ast.AssignStmt:
		if len(p.Lhs) != len(p.Rhs) {
			return nil
		}
		for i, r := range p.Rhs {
			if ast.Unparen(r) == child {
				return a.localVar(p.Lhs[i])
			}
		}
	case *ast.ValueSpec:
		for i, v := range p.Values {
			if ast.Unparen(v) == child && i < len(p.Names) {
				return a.localVar(p.Names[i])
			}
		}
	}
	return nil
}

// isStringType reports whether the expression has string type.
func (a *analysis) isStringType(e ast.Expr) bool {
	tv, ok := a.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstant reports whether the expression is a compile-time constant
// (constant folding means it allocates nothing at run time).
func (a *analysis) isConstant(e ast.Expr) bool {
	tv, ok := a.info.Types[e]
	return ok && tv.Value != nil
}

// inPanic reports whether the node sits inside a panic(...) argument.
func (a *analysis) inPanic(n ast.Node) bool {
	for cur := n; cur != nil; cur = a.parents[cur] {
		call, ok := cur.(*ast.CallExpr)
		if !ok {
			continue
		}
		if a.isBuiltin(call, "panic") && n != ast.Node(call) {
			return true
		}
	}
	return false
}

func (a *analysis) add(pos token.Pos, kind Kind, what string, stack, inPanic bool) {
	a.sites = append(a.sites, Site{Pos: pos, Kind: kind, What: what, Stack: stack, InPanic: inPanic})
}
