// Package a is the floatcmp fixture: exact float comparisons are
// flagged, integer comparisons and suppressed sites are not.
package a

func compare(a, b float64, i, j int) bool {
	if a == b { // want `exact == on float operands`
		return true
	}
	if a != b { // want `exact != on float operands`
		return false
	}
	if i == j { // integers compare exactly; no diagnostic
		return true
	}
	return a-b == 0 // want `exact == on float operands`
}

func mixed(f float32, n int) bool {
	return f == float32(n) // want `exact == on float operands`
}

func suppressed(ratio float64) bool {
	if ratio == 0 { //bouquet:allow floatcmp: zero is the unset sentinel, exactness intended
		return true
	}
	//bouquet:allow floatcmp: the directive on the line above also covers this compare
	return ratio == 1
}
