// Package floatcmp forbids exact equality comparison of floating-point
// values.
//
// Plan costs and selectivities are float64 chains of sums and products;
// two semantically equal values routinely differ by accumulated rounding
// error, so `==`/`!=` silently breaks deterministic tie-breaking (and with
// it the reproducibility of the bouquet's plan choices). Equality must go
// through internal/floats (Eq, EqWithin, Less) or carry an explicit
// //bouquet:allow floatcmp directive stating why an exact compare is
// intended.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer implements the floatcmp invariant.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "forbid exact ==/!= on float operands; use internal/floats.Eq or EqWithin",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(pass, be.X) || isFloat(pass, be.Y) {
				pass.Reportf(be.OpPos, "exact %s on float operands; use floats.Eq/EqWithin (or //bouquet:allow floatcmp with a reason)", be.Op)
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether e's type is a floating-point basic type.
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
