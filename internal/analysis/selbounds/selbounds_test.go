package selbounds_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/selbounds"
)

func TestSelbounds(t *testing.T) {
	analysistest.Run(t, selbounds.Analyzer, "testdata/src/a")
}
