// Package a is the selbounds fixture: constant selectivities outside
// (0,1] are flagged in selectivity-typed composite literals and at
// selectivity parameters.
package a

// Selectivities mirrors cost.Selectivities: one value per predicate.
type Selectivities []float64

// Point mirrors ess.Point: a location in the (0,1]^d error space.
type Point []float64

// Selectivity is a scalar selectivity.
type Selectivity float64

// Scale takes a plain float selectivity parameter.
func Scale(sel float64) float64 { return sel }

// ScaleTyped takes a named-type selectivity parameter.
func ScaleTyped(s Selectivity) Selectivity { return s }

// Width is not a selectivity; its parameter name keeps it unchecked.
func Width(w float64) float64 { return w }

func use() {
	_ = Selectivities{0.5, 1.0} // in-domain, including the closed upper bound
	_ = Selectivities{0.0}      // want `selectivity 0 outside \(0,1\] in Selectivities literal`
	_ = Point{0.1, 1.5}         // want `selectivity 1.5 outside \(0,1\] in Point literal`
	_ = Point{1: -0.2}          // want `selectivity -0.2 outside \(0,1\] in Point literal`
	_ = Scale(0.3)              // in-domain argument
	_ = Scale(0)                // want `selectivity argument 0 for parameter "sel" outside \(0,1\]`
	_ = Scale(2.0)              // want `selectivity argument 2 for parameter "sel" outside \(0,1\]`
	_ = ScaleTyped(1.25)        // want `selectivity argument 1.25 for parameter "s" outside \(0,1\]`
	_ = Width(40.0)             // not a selectivity parameter
	_ = []float64{7.5}          // anonymous slices carry no selectivity meaning
	_ = Point{5}                //bouquet:allow selbounds: stress fixture deliberately leaves the domain
}
