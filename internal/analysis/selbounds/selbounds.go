// Package selbounds enforces the paper's selectivity domain: a
// selectivity is a value in (0,1].
//
// The ESS is a grid over (0,1]^d (§2); a zero or negative selectivity has
// no geometric meaning and a value above 1 breaks the first-quadrant
// invariant that the bouquet's MSO guarantee rests on. The analyzer flags
// constant selectivity values outside the domain at two kinds of site:
//
//   - elements of composite literals of selectivity-carrying types
//     (cost.Selectivities, ess.Point);
//   - constant arguments bound to parameters that are declared as
//     selectivities (a parameter of a type named Selectivity, or named
//     sel/selectivity with a float type).
package selbounds

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer implements the selbounds invariant.
var Analyzer = &analysis.Analyzer{
	Name: "selbounds",
	Doc:  "selectivity constants must lie in (0,1]",
	Run:  run,
}

// selTypeNames are the named types whose composite literals carry
// selectivities, element-wise.
var selTypeNames = map[string]bool{
	"Selectivities": true,
	"Point":         true, // ess.Point: a location in the (0,1]^d error space
}

// selParamNames are parameter names that declare a scalar selectivity.
var selParamNames = map[string]bool{
	"sel":         true,
	"selectivity": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkComposite(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkComposite flags out-of-domain constant elements of selectivity
// composite literals.
func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || !selTypeNames[named.Obj().Name()] {
		return
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elt = kv.Value
		}
		if v, bad := outOfDomain(pass, elt); bad {
			pass.Reportf(elt.Pos(), "selectivity %v outside (0,1] in %s literal", v, named.Obj().Name())
		}
	}
}

// checkCall flags out-of-domain constants bound to selectivity parameters.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i)
		if param == nil || !isSelParam(param) {
			continue
		}
		if v, bad := outOfDomain(pass, arg); bad {
			pass.Reportf(arg.Pos(), "selectivity argument %v for parameter %q outside (0,1]", v, param.Name())
		}
	}
}

// paramAt returns the parameter bound to argument i, honouring variadics.
func paramAt(sig *types.Signature, i int) *types.Var {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		return sig.Params().At(n - 1)
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i)
}

// isSelParam reports whether param is declared as a scalar selectivity.
func isSelParam(param *types.Var) bool {
	if named, ok := param.Type().(*types.Named); ok && named.Obj().Name() == "Selectivity" {
		return true
	}
	if !selParamNames[param.Name()] {
		return false
	}
	b, ok := param.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// outOfDomain reports whether e is a float/numeric constant outside (0,1],
// returning its value for the diagnostic.
func outOfDomain(pass *analysis.Pass, e ast.Expr) (constant.Value, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return nil, false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return nil, false
	}
	f, _ := constant.Float64Val(v)
	return tv.Value, f <= 0 || f > 1
}
