// Package a is the poollife fixture: sync.Pool object lifetimes. The
// clean section mirrors the optimizer's memo-arena shape (Get through a
// type assertion, a dereference alias, uses, one Put, nothing after)
// and the server's pooled encode buffers; the positive patterns are the
// lifetime violations those hot paths must never regress into.
package a

import (
	"bytes"
	"sync"
)

var bufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// --- clean: the canonical get/use/put shape ---

func roundTrip(data []byte) string {
	buf := bufs.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Write(data)
	out := buf.String()
	bufs.Put(buf)
	return out
}

// --- use after Put ---

func useAfterPut(data []byte) int {
	buf := bufs.Get().(*bytes.Buffer)
	buf.Write(data)
	bufs.Put(buf)
	return buf.Len() // want `buf is used after being returned to the pool`
}

// --- double Put ---

func doublePut() {
	buf := bufs.Get().(*bytes.Buffer)
	buf.Reset()
	bufs.Put(buf)
	bufs.Put(buf) // want `buf is returned to the pool twice on this path`
}

// A conditional Put joining with a live path is not definite: no report
// at the second Put, but the escape at return is.
func conditionalPut(flush bool) *bytes.Buffer {
	buf := bufs.Get().(*bytes.Buffer)
	if flush {
		bufs.Put(buf)
	}
	return buf // want `pooled value buf escapes via return without a Put`
}

// --- escapes ---

func escapeByReturn() *bytes.Buffer {
	buf := bufs.Get().(*bytes.Buffer)
	buf.Reset()
	return buf // want `pooled value buf escapes via return without a Put`
}

type holder struct {
	scratch *bytes.Buffer
}

func escapeByField(h *holder) {
	buf := bufs.Get().(*bytes.Buffer)
	h.scratch = buf // want `pooled value buf escapes into longer-lived storage while live`
	bufs.Put(buf)
}

func escapeByAliasedBytes(data []byte) []byte {
	buf := bufs.Get().(*bytes.Buffer)
	buf.Write(data)
	view := buf.Bytes()
	bufs.Put(buf)
	return view // want `view is used after being returned to the pool`
}

// Returning while a deferred Put releases the value is a use-after-free
// handed to the caller.
func deferredPutEscape() *bytes.Buffer {
	buf := bufs.Get().(*bytes.Buffer)
	defer bufs.Put(buf)
	buf.Reset()
	return buf // want `buf is returned while a deferred Put releases it`
}

// The deferred Put itself, with no escape, is the idiomatic shape.
func deferredPutClean(data []byte) string {
	buf := bufs.Get().(*bytes.Buffer)
	defer bufs.Put(buf)
	buf.Reset()
	buf.Write(data)
	return buf.String()
}

// --- the arena shape: Get with assertion, deref alias, put, done ---

type entry struct{ n int }

var arena = sync.Pool{New: func() any { s := make([]entry, 64); return &s }}

func optimize(k int) entry {
	memop := arena.Get().(*[]entry)
	memo := *memop
	clear(memo)
	memo[k] = entry{n: k}
	final := memo[k]
	arena.Put(memop)
	return final
}

// The same shape reading the alias after Put is the regression poollife
// is there to catch.
func optimizeBroken(k int) entry {
	memop := arena.Get().(*[]entry)
	memo := *memop
	memo[k] = entry{n: k}
	arena.Put(memop)
	return memo[k] // want `memo is used after being returned to the pool`
}

// --- suppressed: documented ownership transfer ---

func newPooled() *bytes.Buffer {
	buf := bufs.Get().(*bytes.Buffer)
	buf.Reset()
	//bouquet:allow poollife: ownership transfers to the caller, which must release via bufs.Put
	return buf
}
