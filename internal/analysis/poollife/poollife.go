// Package poollife checks sync.Pool object lifetimes with a
// flow-sensitive dataflow over each function's CFG.
//
// A pooled object has exactly one safe shape per function: Get it, use
// it, Put it back once, and never look at it again — because the moment
// it returns to the pool another goroutine may Get it and start writing.
// The optimizer's memo arena and the server's response buffers lean on
// this discipline for their allocation-free hot paths. The analyzer
// tracks every local bound to a pool.Get result (through type
// assertions, dereferences like memo := *memop, and byte-aliasing
// accessors like buf.Bytes()) and reports:
//
//   - use after Put: any read of the value on a path where it has
//     definitely been returned to the pool;
//   - double Put: a second Put of the same value on a path where the
//     first has definitely happened;
//   - escape: the value (or an alias of its memory) returned to the
//     caller or stored into a field, index, or global while still live —
//     ownership is leaving the function without a Put, which is only
//     correct for a documented ownership transfer (annotate those), and
//     never correct when a deferred Put releases the value at return.
//
// The analysis is per-function and definite-state: conditional puts
// (joins of live and put paths) are not reported, so the analyzer stays
// quiet on patterns it cannot prove wrong.
package poollife

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer implements the poollife invariant.
var Analyzer = &analysis.Analyzer{
	Name: "poollife",
	Doc:  "report sync.Pool values used after Put, Put twice, or escaping without a documented ownership transfer",
	Run:  run,
}

// Lifetime states. Absent from the fact map means untracked.
const (
	stLive  = iota + 1 // holds a pooled object not yet returned
	stPut              // definitely returned to the pool
	stMaybe            // returned on some paths only
)

// poolFact maps each tracked root variable to its lifetime state. A nil
// map is the lattice bottom.
type poolFact map[*types.Var]int

type poolLattice struct{}

func (poolLattice) Bottom() dataflow.Fact { return poolFact(nil) }

func (poolLattice) Join(x, y dataflow.Fact) dataflow.Fact {
	a, b := x.(poolFact), y.(poolFact)
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(poolFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if prev, ok := out[k]; ok && prev != v {
			out[k] = stMaybe
		} else if !ok {
			out[k] = v
		}
	}
	return out
}

func (poolLattice) Equal(x, y dataflow.Fact) bool {
	a, b := x.(poolFact), y.(poolFact)
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) error {
	a := &analyzer{pass: pass}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.analyzeFunc(n.Body)
				}
			case *ast.FuncLit:
				a.analyzeFunc(n.Body)
			}
			return true
		})
	}
	return nil
}

type analyzer struct {
	pass *analysis.Pass

	// rootOf canonicalizes aliases: memo := *memop and data := buf.Bytes()
	// share their source's lifetime state.
	rootOf map[*types.Var]*types.Var
	// deferredPut holds roots released by a deferred pool.Put.
	deferredPut map[*types.Var]bool
}

func (a *analyzer) analyzeFunc(body *ast.BlockStmt) {
	a.rootOf = map[*types.Var]*types.Var{}
	a.deferredPut = map[*types.Var]bool{}
	a.collectAliases(body)

	g := a.pass.FuncCFG(body)
	res := dataflow.Forward(g, poolLattice{}, a.transfer, nil)
	for _, b := range g.Blocks {
		res.FactAt(b, func(s ast.Stmt, before dataflow.Fact) {
			a.check(s, before.(poolFact))
		})
	}
}

// collectAliases records alias edges and deferred Puts in one syntactic
// pass (nested literals excluded — they are analyzed on their own).
func (a *analyzer) collectAliases(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				lv := a.varOf(lhs)
				src := a.aliasSource(n.Rhs[i])
				if lv != nil && src != nil {
					a.rootOf[lv] = a.root(src)
				}
			}
		case *ast.DeferStmt:
			if v := a.putArg(n.Call); v != nil {
				a.deferredPut[a.root(v)] = true
			}
		}
		return true
	})
}

// aliasSource returns the variable whose memory rhs aliases: a bare
// ident, a dereference *x, or a buf.Bytes() accessor.
func (a *analyzer) aliasSource(rhs ast.Expr) *types.Var {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		v, _ := a.pass.TypesInfo.Uses[e].(*types.Var)
		return v
	case *ast.StarExpr:
		return a.aliasSource(e.X)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Bytes" && len(e.Args) == 0 {
			return a.aliasSource(sel.X)
		}
	case *ast.TypeAssertExpr:
		return a.aliasSource(e.X)
	}
	return nil
}

func (a *analyzer) root(v *types.Var) *types.Var {
	for {
		r, ok := a.rootOf[v]
		if !ok || r == v {
			return v
		}
		v = r
	}
}

// transfer updates lifetime states across one statement.
func (a *analyzer) transfer(s ast.Stmt, in dataflow.Fact) dataflow.Fact {
	m := in.(poolFact)
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return m
		}
		out := m
		for i, lhs := range s.Lhs {
			lv := a.varOf(lhs)
			if lv == nil {
				continue
			}
			switch {
			case a.isPoolGet(s.Rhs[i]):
				out = clone(out)
				out[a.root(lv)] = stLive
			case out[a.root(lv)] != 0 && a.aliasSource(s.Rhs[i]) == nil:
				// Rebinding a tracked name to unrelated memory ends the
				// tracked lifetime for that name.
				out = clone(out)
				delete(out, a.root(lv))
			}
		}
		return out
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if v := a.putArg(call); v != nil {
				out := clone(m)
				out[a.root(v)] = stPut
				return out
			}
		}
	}
	return m
}

// check reports lifetime violations visible at one statement given the
// states holding before it.
func (a *analyzer) check(s ast.Stmt, m poolFact) {
	// Double Put and use-after-Put at a Put site.
	putArgs := map[*ast.Ident]bool{}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		v := a.putArg(call)
		if v == nil {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			putArgs[id] = true
		}
		if m[a.root(v)] == stPut {
			a.pass.Reportf(call.Pos(), "%s is returned to the pool twice on this path; the second Put hands out one object to two owners", v.Name())
		}
		return true
	})

	// Rebinding targets are not reads: x = pool.Get() after a Put is the
	// reuse idiom, not a use-after-Put.
	rebinds := map[*ast.Ident]bool{}
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				rebinds[id] = true
			}
		}
	}

	// Use after Put: any remaining read of a definitely-Put root.
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || putArgs[id] || rebinds[id] {
			return true
		}
		v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if m[a.root(v)] == stPut {
			a.pass.Reportf(id.Pos(), "%s is used after being returned to the pool; another goroutine may already own it", id.Name)
		}
		return true
	})

	// Escapes: pooled memory leaving the function while live.
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			v := a.aliasSource(res)
			if v == nil {
				continue
			}
			r := a.root(v)
			switch {
			case a.deferredPut[r] && m[r] == stLive:
				a.pass.Reportf(res.Pos(), "%s is returned while a deferred Put releases it; the caller receives pool-owned memory", v.Name())
			case m[r] == stLive || m[r] == stMaybe:
				a.pass.Reportf(res.Pos(), "pooled value %s escapes via return without a Put; Put it on every path or annotate the ownership transfer", v.Name())
			}
		}
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return
		}
		for i, lhs := range s.Lhs {
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
			default:
				continue
			}
			v := a.aliasSource(s.Rhs[i])
			if v == nil {
				continue
			}
			if r := a.root(v); m[r] == stLive || m[r] == stMaybe {
				a.pass.Reportf(s.Rhs[i].Pos(), "pooled value %s escapes into longer-lived storage while live; Put cannot be proven to happen-after all uses", v.Name())
			}
		}
	}
}

// isPoolGet reports whether rhs is pool.Get() (possibly through a type
// assertion) on a sync.Pool.
func (a *analyzer) isPoolGet(rhs ast.Expr) bool {
	e := ast.Unparen(rhs)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	return a.isPool(sel.X)
}

// putArg returns the root variable handed to pool.Put(x), nil for other
// calls.
func (a *analyzer) putArg(call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 || !a.isPool(sel.X) {
		return nil
	}
	return a.aliasSource(call.Args[0])
}

// isPool reports whether e has type sync.Pool or *sync.Pool.
func (a *analyzer) isPool(e ast.Expr) bool {
	tv, ok := a.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

func (a *analyzer) varOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := a.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := a.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

func clone(m poolFact) poolFact {
	out := make(poolFact, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
