package poollife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poollife"
)

func TestPoollife(t *testing.T) {
	analysistest.Run(t, poollife.Analyzer, "testdata/src/a")
}
