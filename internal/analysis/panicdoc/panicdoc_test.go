package panicdoc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/panicdoc"
)

func TestPanicdoc(t *testing.T) {
	analysistest.Run(t, panicdoc.Analyzer, "testdata/src/a")
}
