// Package a is the panicdoc fixture: exported functions that can reach
// a panic must say so in their doc comment.
package a

// Documented rejects bad input. It panics when n is negative.
func Documented(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// Undocumented has a doc comment that is silent about failure.
func Undocumented(n int) int { // want `exported Undocumented can reach 1 panic`
	if n < 0 {
		panic("negative")
	}
	return n
}

// Indirect delegates the range check to an unexported helper.
func Indirect(n int) int { // want `exported Indirect can reach 1 panic`
	return helper(n)
}

func helper(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// Delegating calls Documented, whose own doc comment carries the
// contract; the failure mode is not attributed to the caller.
func Delegating(n int) int { return Documented(n) }

// Grid is an exported receiver type.
type Grid struct{}

// Coord resolves a cell index.
func (Grid) Coord(i int) int { // want `exported Coord can reach 1 panic`
	if i < 0 {
		panic("out of range")
	}
	return i
}

type hidden struct{}

// Boom is exported, but its receiver type is not; it is unreachable from
// outside the package and so is not part of the documented surface.
func (hidden) Boom() { panic("x") }

func Suppressed() { panic("fail fast") } //bouquet:allow panicdoc: process-fatal by design, sign-off 2026-08-05
