// Package panicdoc makes library panics part of the documented contract.
//
// The repository uses panics for caller-contract violations (malformed
// catalogs, out-of-range grid coordinates, impossible operator trees).
// That is a legitimate Go idiom only when the exported surface says so:
// an undocumented panic is an outage, a documented one is an assertion.
// For every exported function or method, the analyzer computes the panics
// reachable through its body and through transitively called *unexported*
// same-package functions (an exported callee documents its own panics and
// so ends the attribution), and requires the word "panic" in the doc
// comment of any function that can reach one.
package panicdoc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer implements the panicdoc invariant.
var Analyzer = &analysis.Analyzer{
	Name: "panicdoc",
	Doc:  "exported functions that can panic must say so in their doc comment",
	Run:  run,
}

// funcFacts is what one function declaration contributes to reachability.
type funcFacts struct {
	decl    *ast.FuncDecl
	panics  []token.Pos   // direct panic(...) statements in the body
	callees []*types.Func // static same-package calls
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // a binary's panics surface as its own crash reports
	}

	facts := map[*types.Func]*funcFacts{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts[fn] = gather(pass, fd)
		}
	}

	for fn, ff := range facts {
		if !exportedSurface(fn) {
			continue
		}
		at, n := reachablePanic(pass, fn, facts)
		if n == 0 {
			continue
		}
		if docMentionsPanic(ff.decl) {
			continue
		}
		pass.Reportf(ff.decl.Name.Pos(), "exported %s can reach %d panic(s) (e.g. %s) but its doc comment does not mention panicking",
			fn.Name(), n, pass.Fset.Position(at))
	}
	return nil
}

// gather records a declaration's direct panics and same-package callees.
func gather(pass *analysis.Pass, fd *ast.FuncDecl) *funcFacts {
	ff := &funcFacts{decl: fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		switch obj := pass.TypesInfo.Uses[id].(type) {
		case *types.Builtin:
			if obj.Name() == "panic" {
				ff.panics = append(ff.panics, call.Pos())
			}
		case *types.Func:
			if obj.Pkg() == pass.Pkg {
				ff.callees = append(ff.callees, obj)
			}
		}
		return true
	})
	return ff
}

// reachablePanic walks from fn through unexported same-package callees,
// returning an example panic position and the count of reachable panic
// statements. Exported callees are not entered: their contract is their
// own doc comment.
func reachablePanic(pass *analysis.Pass, fn *types.Func, facts map[*types.Func]*funcFacts) (token.Pos, int) {
	var example token.Pos
	count := 0
	seen := map[*types.Func]bool{}
	var visit func(f *types.Func, root bool)
	visit = func(f *types.Func, root bool) {
		if seen[f] {
			return
		}
		seen[f] = true
		if !root && f.Exported() {
			return
		}
		ff, ok := facts[f]
		if !ok {
			return
		}
		for _, p := range ff.panics {
			if count == 0 {
				example = p
			}
			count++
		}
		for _, callee := range ff.callees {
			visit(callee, false)
		}
	}
	visit(fn, true)
	return example, count
}

// exportedSurface reports whether fn is reachable from outside the
// package: an exported function, or an exported method on an exported
// type.
func exportedSurface(fn *types.Func) bool {
	if !fn.Exported() {
		return false
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Exported()
}

// docMentionsPanic reports whether the declaration's doc comment talks
// about panicking.
func docMentionsPanic(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	return strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
}
