package seededrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seededrand"
)

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, seededrand.Analyzer, "testdata/src/a")
}
