// Package a is the seededrand fixture: the process-global math/rand
// source is flagged; explicit seeded generators are the sanctioned route.
package a

import "math/rand"

// Perm draws through an injected, explicitly seeded generator.
func Perm(n int) []int {
	r := rand.New(rand.NewSource(42)) // constructors are allowed
	return r.Perm(n)
}

func global(n int) float64 {
	_ = rand.Intn(n)      // want `global math/rand source via rand.Intn`
	return rand.Float64() // want `global math/rand source via rand.Float64`
}

func suppressed() int64 {
	return rand.Int63() //bouquet:allow seededrand: startup jitter, reproducibility not required
}
