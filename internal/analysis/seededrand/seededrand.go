// Package seededrand forbids the global math/rand source.
//
// Bouquet experiments must be bit-for-bit reproducible: the plan diagram,
// the synthetic data, and cost-model perturbations are all functions of
// explicit seeds. The package-level math/rand functions draw from a
// shared process-global source whose state depends on everything else the
// process did — randomness must instead flow through an injected
// *rand.Rand built with rand.New(rand.NewSource(seed)), as internal/data
// does.
package seededrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer implements the seededrand invariant.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid package-level math/rand functions; inject a seeded *rand.Rand",
	Run:  run,
}

// allowed are the math/rand package-level functions that do not touch the
// global source: constructors for explicit, seedable generators.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand etc. are the sanctioned route
			}
			if allowed[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "global math/rand source via rand.%s; draw from an injected seeded *rand.Rand instead", fn.Name())
			return true
		})
	}
	return nil
}
