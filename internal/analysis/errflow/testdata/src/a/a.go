// Package a is the errflow fixture: silently dropped errors are
// flagged, handled and deliberately annotated ones are not.
package a

import "errors"

func mayFail() (int, error)  { return 0, nil }
func justErr() error         { return nil }
func clean() int             { return 1 }
func pair() (int, int)       { return 1, 2 }
func twoErr() (error, error) { return nil, nil }

func discards() int {
	v, _ := mayFail() // want `error result of mayFail discarded`
	_, w := pair()    // ints may be blanked freely
	justErr()         // want `call to justErr ignores its error result`
	clean()           // no error result: fine
	_ = justErr()     // want `error result of justErr discarded`
	return v + w
}

func handled() (int, error) {
	v, err := mayFail()
	if err != nil {
		return 0, err
	}
	if err := justErr(); err != nil {
		return 0, errors.New("wrapped")
	}
	return v, nil
}

func tupleBlanks() {
	_, _ = twoErr() // want `error result of twoErr discarded` `error result of twoErr discarded`
}

func deferred() error {
	defer justErr() // defer is the accepted discard idiom
	go justErr()    // goroutine errors are unobservable
	return nil
}

func suppressed() int {
	v, _ := mayFail() //bouquet:allow errflow: probe call, failure means "absent" which is fine here
	//bouquet:allow errflow: best-effort cache warm, errors intentionally dropped
	justErr()
	return v
}
