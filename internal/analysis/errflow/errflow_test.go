package errflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errflow"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, errflow.Analyzer, "testdata/src/a")
}
