// Package errflow reports discarded errors in library packages.
//
// The bouquet runtime's contract violations travel as error values —
// exec.Engine.Run, the persist codec, the compile pipeline all return
// them — and a silently dropped error turns a diagnosable contract
// breach into a wrong answer (the exec.Run iterator-build error dropped
// at a call site is exactly the bug class this analyzer exists for).
// errflow flags, in non-main non-test packages:
//
//   - assignments that discard an error result into the blank
//     identifier (`v, _ := f()` where the second result is an error),
//   - expression statements that ignore a call's error result
//     entirely (`f()` where f returns an error).
//
// Two sink families are exempt because their errors are noise, not
// signal: the fmt print family (formatted output is best-effort — the
// repo's printless analyzer already polices where it may go), and
// methods on strings.Builder and bytes.Buffer, which are documented to
// never return a non-nil error. Deferred calls are likewise exempt:
// `defer f.Close()` is an accepted idiom whose error has nowhere
// useful to go. Remaining intentional discards carry a
// //bouquet:allow errflow directive naming the reason, which keeps
// every swallowed error a reviewed decision rather than an accident.
package errflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer implements the errflow invariant.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "forbid silently discarded errors in library packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Commands report errors at the top level however they like;
		// the invariant protects library call chains.
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.ExprStmt:
				checkExprStmt(pass, n)
			case *ast.DeferStmt:
				return false // defer f.Close() is accepted
			case *ast.GoStmt:
				return false // goroutine results are unobservable anyway
			}
			return true
		})
	}
	return nil
}

// checkAssign flags blanks that swallow an error result.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Tuple form: v, _ := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || exempt(pass, call) {
			return
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s discarded; handle it or annotate with //bouquet:allow errflow", callName(call))
			}
		}
		return
	}
	// Parallel form: _, x = f(), g().
	if len(as.Rhs) == len(as.Lhs) {
		for i, lhs := range as.Lhs {
			if !isBlank(lhs) {
				continue
			}
			if t := pass.TypesInfo.Types[as.Rhs[i]].Type; t != nil && isErrorType(t) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && !exempt(pass, call) {
					pass.Reportf(lhs.Pos(), "error result of %s discarded; handle it or annotate with //bouquet:allow errflow", callName(call))
				}
			}
		}
	}
}

// checkExprStmt flags calls whose error results vanish entirely.
func checkExprStmt(pass *analysis.Pass, es *ast.ExprStmt) {
	call, ok := es.X.(*ast.CallExpr)
	if !ok || exempt(pass, call) {
		return
	}
	t := pass.TypesInfo.Types[call].Type
	if t == nil {
		return
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				pass.Reportf(call.Pos(), "call to %s ignores its error result; handle it or annotate with //bouquet:allow errflow", callName(call))
				return
			}
		}
	default:
		if isErrorType(t) {
			pass.Reportf(call.Pos(), "call to %s ignores its error result; handle it or annotate with //bouquet:allow errflow", callName(call))
		}
	}
}

// exempt reports whether call's error is noise by contract: the fmt
// print family, and methods on the never-failing strings.Builder and
// bytes.Buffer.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print/Printf/Println/Fprint/Fprintf/Fprintln/...
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if pkg.Imported().Path() == "fmt" && strings.Contains(sel.Sel.Name, "rint") {
				return true
			}
			return false
		}
	}
	// Builder/Buffer methods.
	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil {
		return false
	}
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isErrorType reports whether t is the built-in error interface (or a
// named type whose underlying interface is exactly it).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callName renders the callee for diagnostics.
func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "call"
}
