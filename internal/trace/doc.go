// Package trace provides flag-gated, low-overhead structured execution
// traces for the bouquet runtime.
//
// The paper's §5 evidence — MSO/ASO, per-step budgeted executions, spill
// behaviour — is only as trustworthy as the visibility into what the
// run-time actually did. A Recorder captures that as an ordered sequence
// of fixed-shape Spans: contour entries, budgeted plan executions (with
// per-operator counters), spilled executions, budget aborts, and
// discovered-selectivity updates. The run drivers in internal/core and
// both execution engines in internal/exec emit spans when (and only
// when) a Recorder is supplied; vectorized executions additionally
// stamp exec spans with the batch count and morsel worker count.
//
// Design constraints, in order:
//
//   - disabled tracing must be free: a nil *Recorder is the "off" state,
//     every method is nil-safe, and the hot loops guard span construction
//     behind Enabled() — internal/core pins this with an AllocsPerRun
//     parity test;
//   - enabled tracing must stay off the allocator: spans land in a
//     preallocated power-of-two ring via a single atomic slot claim
//     (lock-free, no mutex on the record path), overwriting the oldest
//     entries when the run outgrows the ring;
//   - spans must survive the wire: they marshal to JSON (served by the
//     bouquetd /runs/{id}/trace endpoint) with non-finite budgets
//     sanitized at record time, since encoding/json rejects ±Inf.
//
// Snapshotting with Spans is meant for after the traced run completes;
// concurrent Record calls are safe against each other, but a snapshot
// taken mid-run may observe partially ordered history.
package trace
