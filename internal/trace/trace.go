package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sync/atomic"
)

// Kind classifies a Span.
type Kind uint8

const (
	// KindCompile marks a bouquet compilation (one span per compile).
	KindCompile Kind = iota + 1
	// KindContour marks the run entering an isocost contour.
	KindContour
	// KindExec is one (possibly partial) plan execution step: generic or
	// spilled, budgeted or terminal. Completed=false means the whole
	// budget was spent and the intermediate results jettisoned.
	KindExec
	// KindSpill marks the engine breaking the pipeline above a chosen
	// predicate's node, starving downstream operators (§5.3). Emitted by
	// internal/exec before the spilled subtree runs.
	KindSpill
	// KindBudgetAbort marks an execution aborting at budget exhaustion.
	// Emitted by internal/exec at the moment the meter trips.
	KindBudgetAbort
	// KindLearn is a discovered-selectivity update: q_run moved along Dim
	// to Sel (Completed=true when the value is exact, §5.2).
	KindLearn
)

var kindNames = [...]string{
	KindCompile:     "compile",
	KindContour:     "contour",
	KindExec:        "exec",
	KindSpill:       "spill",
	KindBudgetAbort: "budget-abort",
	KindLearn:       "learn",
}

// String returns the wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind from its string name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown span kind %q", s)
}

// PredCount is one predicate's pass count at an operator (the counter
// selectivity learning divides by the input cardinality, §5.2).
type PredCount struct {
	Pred  int   `json:"pred"`
	Count int64 `json:"count"`
}

// NodeStat is one operator's counters within an executed step: real
// tuple counts surfaced from the engine's instrumentation for concrete
// runs, or the cost model's realized cardinalities for simulated runs.
type NodeStat struct {
	// Op is the operator name (plan.Op.String()).
	Op string `json:"op"`
	// Relation is the base relation for scan-like operators.
	Relation string `json:"relation,omitempty"`
	// Out is the number of tuples the operator emitted.
	Out int64 `json:"out"`
	// In is the number of tuples consumed from the outer/left input.
	In int64 `json:"in,omitempty"`
	// Matches counts join-predicate matches before residual filters.
	Matches int64 `json:"matches,omitempty"`
	// Pass holds per-predicate pass counts, ascending by predicate ID.
	Pass []PredCount `json:"pass,omitempty"`
	// EstCost is the cost model's subtree cost estimate (simulated runs;
	// zero for engine-surfaced stats, whose charges are metered globally).
	EstCost float64 `json:"estCost,omitempty"`
	// Done reports whether the operator ran to completion.
	Done bool `json:"done"`
	// Starved marks operators never built because a spilled execution
	// broke the pipeline below them (§5.3).
	Starved bool `json:"starved,omitempty"`
}

// Span is one structured event of a traced run. All fields are plain
// values so a Span costs nothing to construct on the stack; only Nodes
// (attached exclusively in enabled mode) touches the allocator.
type Span struct {
	// Seq is the record order, assigned by the Recorder.
	Seq uint64 `json:"seq"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Contour is the 1-based isocost step index (0 when not applicable).
	Contour int `json:"contour"`
	// PlanID is the diagram plan ID (-1 when not applicable).
	PlanID int `json:"plan"`
	// Dim is the ESS dimension a spilled execution learns, -1 otherwise.
	Dim int `json:"dim"`
	// Pred is the predicate ID a spill/learn span concerns, -1 otherwise.
	Pred int `json:"pred"`
	// Budget is the cost limit the step ran under (0 = unbudgeted).
	Budget float64 `json:"budget"`
	// Spent is the cost actually charged.
	Spent float64 `json:"spent"`
	// Rows is the row count the driven node produced.
	Rows int64 `json:"rows"`
	// Sel is the discovered selectivity value (KindLearn).
	Sel float64 `json:"sel,omitempty"`
	// Completed reports step completion (KindExec) or exact learning
	// (KindLearn).
	Completed bool `json:"completed"`
	// WallNanos is the step's wall-clock duration in nanoseconds.
	WallNanos int64 `json:"wallNs,omitempty"`
	// Batches is the number of column batches a vectorized execution
	// metered (0 for tuple-at-a-time runs).
	Batches int64 `json:"batches,omitempty"`
	// Workers is the morsel worker count of a vectorized execution (0
	// for tuple-at-a-time runs).
	Workers int `json:"workers,omitempty"`
	// ReuseHits counts operator-state reuse-cache hits inside an
	// executed step (0 when the cache is disabled or cold).
	ReuseHits int `json:"reuseHits,omitempty"`
	// SalvagedCost is the model cost those hits charged without
	// re-executing the work — part of Spent, saved on the wall clock.
	SalvagedCost float64 `json:"salvagedCost,omitempty"`
	// Nodes carries per-operator counters for executed steps.
	Nodes []NodeStat `json:"nodes,omitempty"`
}

// SafeCost sanitizes a cost value for span fields: non-finite budgets
// (the +Inf "unbudgeted" sentinel of the terminal execution) become 0,
// which Span documents as "no limit" — and which encoding/json accepts.
func SafeCost(c float64) float64 {
	if math.IsInf(c, 0) || math.IsNaN(c) {
		return 0
	}
	return c
}

// DefaultCapacity is the ring size New selects for capacity <= 0: roomy
// enough for every step of a deep bouquet run (contours × ρ × a few
// spans per step) while staying a few hundred KiB.
const DefaultCapacity = 4096

// Recorder collects spans into a lock-free ring buffer. The zero state
// for callers is a nil *Recorder, which disables tracing entirely; every
// method is nil-safe.
type Recorder struct {
	buf  []Span
	mask uint64
	pos  atomic.Uint64
}

// New builds a Recorder retaining the last capacity spans (rounded up to
// a power of two; capacity <= 0 selects DefaultCapacity).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{buf: make([]Span, n), mask: uint64(n - 1)}
}

// Enabled reports whether spans are being collected. Hot loops guard
// span construction (and any time.Now calls) behind it so the disabled
// path stays allocation- and syscall-free.
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one span: a single atomic claims the next slot, the
// span is copied in, and its Seq is the claim order. When the ring is
// full the oldest span is overwritten. Safe for concurrent use; no-op
// on a nil Recorder.
//
//bouquet:allocfree pinned dynamically by TestRecordAllocFree
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	seq := r.pos.Add(1) - 1
	s.Seq = seq
	//bouquet:allow atomicmix: the overwrite-oldest ring tolerates torn slot writes by contract; Spans documents that a snapshot taken mid-run may see partially written spans
	r.buf[seq&r.mask] = s
}

// Len returns the number of retained spans (at most the ring capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.pos.Load()
	if n > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(n)
}

// Dropped returns how many spans were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	n := r.pos.Load()
	if n <= uint64(len(r.buf)) {
		return 0
	}
	return n - uint64(len(r.buf))
}

// Spans snapshots the retained spans in record order (oldest first).
// Intended for use after the traced run completes; see the package
// comment for mid-run caveats. Returns nil on a nil Recorder.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	n := r.pos.Load()
	if n == 0 {
		return nil
	}
	if n <= uint64(len(r.buf)) {
		out := make([]Span, n)
		copy(out, r.buf[:n])
		return out
	}
	// Wrapped: the oldest retained span sits at the write cursor.
	out := make([]Span, len(r.buf))
	head := n & r.mask
	copy(out, r.buf[head:])
	copy(out[uint64(len(r.buf))-head:], r.buf[:head])
	return out
}
