package trace

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestNilRecorderIsDisabledAndSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(Span{Kind: KindExec}) // must not panic
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder returned spans %v", got)
	}
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("nil recorder Len/Dropped = %d/%d", r.Len(), r.Dropped())
	}
}

func TestRecordOrderAndSeq(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Record(Span{Kind: KindExec, PlanID: i})
	}
	spans := r.Spans()
	if len(spans) != 5 || r.Len() != 5 {
		t.Fatalf("retained %d spans, want 5", len(spans))
	}
	for i, s := range spans {
		if s.Seq != uint64(i) || s.PlanID != i {
			t.Fatalf("span %d = seq %d plan %d", i, s.Seq, s.PlanID)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(4) // power of two already
	for i := 0; i < 11; i++ {
		r.Record(Span{Kind: KindExec, PlanID: i})
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := 7 + i; s.PlanID != want || s.Seq != uint64(want) {
			t.Fatalf("span %d = plan %d seq %d, want plan/seq %d", i, s.PlanID, s.Seq, want)
		}
	}
	if got := r.Dropped(); got != 7 {
		t.Fatalf("Dropped = %d, want 7", got)
	}
}

func TestCapacityRoundsUpToPowerOfTwo(t *testing.T) {
	r := New(5)
	if len(r.buf) != 8 {
		t.Fatalf("capacity 5 rounded to %d, want 8", len(r.buf))
	}
	if d := New(0); len(d.buf) != DefaultCapacity {
		t.Fatalf("default capacity %d, want %d", len(d.buf), DefaultCapacity)
	}
}

// TestRecordAllocFree pins the enabled-mode record path at zero
// allocations: the ring is preallocated, the slot claim is one atomic,
// and a node-free Span is a stack value.
func TestRecordAllocFree(t *testing.T) {
	r := New(64)
	s := Span{Kind: KindExec, Contour: 3, PlanID: 7, Dim: -1, Budget: 12.5, Spent: 12.5}
	if got := testing.AllocsPerRun(100, func() { r.Record(s) }); got > 0 {
		t.Errorf("enabled Record allocates %.1f/op, want 0", got)
	}
	var nilRec *Recorder
	if got := testing.AllocsPerRun(100, func() { nilRec.Record(s) }); got > 0 {
		t.Errorf("disabled Record allocates %.1f/op, want 0", got)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(1024)
	var wg sync.WaitGroup
	const writers, each = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(Span{Kind: KindExec})
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != writers*each {
		t.Fatalf("retained %d spans, want %d", got, writers*each)
	}
	seen := make(map[uint64]bool)
	for _, s := range r.Spans() {
		if seen[s.Seq] {
			t.Fatalf("duplicate seq %d", s.Seq)
		}
		seen[s.Seq] = true
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	in := Span{
		Seq: 3, Kind: KindLearn, Contour: 2, PlanID: 5, Dim: 1, Pred: 4,
		Budget: 10, Spent: 10, Rows: 42, Sel: 0.25, Completed: true, WallNanos: 1500,
		Nodes: []NodeStat{{Op: "SeqScan", Relation: "part", Out: 10, Pass: []PredCount{{Pred: 0, Count: 7}}, Done: true}},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Span
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindLearn || out.Sel != in.Sel || len(out.Nodes) != 1 || out.Nodes[0].Pass[0].Count != 7 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
}

func TestSafeCost(t *testing.T) {
	if got := SafeCost(math.Inf(1)); got != 0 {
		t.Fatalf("SafeCost(+Inf) = %g", got)
	}
	if got := SafeCost(math.Inf(-1)); got != 0 {
		t.Fatalf("SafeCost(-Inf) = %g", got)
	}
	if got := SafeCost(math.NaN()); got != 0 {
		t.Fatalf("SafeCost(NaN) = %g", got)
	}
	if got := SafeCost(12.5); got != 12.5 {
		t.Fatalf("SafeCost(12.5) = %g", got)
	}
	// Every span field reaching JSON must survive encoding.
	if _, err := json.Marshal(Span{Budget: SafeCost(math.Inf(1))}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRecord measures the per-span cost of the hot recording path
// (the numbers quoted in ARCHITECTURE.md's Observability section).
func BenchmarkRecord(b *testing.B) {
	r := New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(Span{Kind: KindExec, Contour: 1, PlanID: i, Spent: 12.5})
	}
}

// BenchmarkRecordDisabled measures the nil-recorder fast path.
func BenchmarkRecordDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.Enabled() {
			r.Record(Span{Kind: KindExec})
		}
	}
}
