package sqlparse

import (
	"strconv"

	"repro/internal/catalog"
	"repro/internal/query"
)

// Parse builds a query from its SQL-like text against a catalog.
//
// Grammar (keywords case-insensitive):
//
//	query      := SELECT target FROM rel (',' rel)* WHERE pred (AND pred)*
//	target     := '*' | COUNT '(' '*' ')'
//	pred       := colref op rhs ['?']
//	op         := '<' | '>=' | '='
//	rhs        := colref            (join predicate, '=' only)
//	            | SEL '(' number ')' (selection selectivity; or join override)
//	colref     := ident '.' ident
//
// For '=' joins between column references, an optional trailing
// SEL(f) overrides the default selectivity; otherwise one side must be a
// key column and the clean PK-FK selectivity 1/|PK| is used. A trailing '?'
// marks the predicate error-prone.
func Parse(name string, cat *catalog.Catalog, input string) (*query.Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input, cat: cat, b: query.NewBuilder(name, cat)}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.b.Build()
}

type parser struct {
	toks  []token
	input string
	pos   int
	cat   *catalog.Catalog
	b     *query.Builder
	rels  map[string]bool
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return posErrf(p.input, t.pos, format, args...)
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, p.errf(t, "expected %s, got %q", kind, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !t.isKeyword(kw) {
		return p.errf(t, "expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) parse() error {
	if err := p.expectKeyword("SELECT"); err != nil {
		return err
	}
	if err := p.parseTarget(); err != nil {
		return err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return err
	}
	if err := p.parseFrom(); err != nil {
		return err
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return err
	}
	for {
		if err := p.parsePredicate(); err != nil {
			return err
		}
		if p.cur().isKeyword("AND") {
			p.next()
			continue
		}
		break
	}
	if p.cur().isKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		ref, err := p.parseColRef()
		if err != nil {
			return err
		}
		p.b.GroupByCol(ref.rel, ref.col)
	}
	if t := p.cur(); t.kind != tokEOF {
		return p.errf(t, "trailing input %q", t.text)
	}
	return nil
}

func (p *parser) parseTarget() error {
	t := p.next()
	switch {
	case t.kind == tokStar:
		return nil
	case t.isKeyword("COUNT"):
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		if _, err := p.expect(tokStar); err != nil {
			return err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		p.b.Aggregate()
		return nil
	default:
		return p.errf(t, "expected '*' or COUNT(*), got %q", t.text)
	}
}

func (p *parser) parseFrom() error {
	p.rels = map[string]bool{}
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		p.b.Relation(t.text)
		p.rels[t.text] = true
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		return nil
	}
}

// colRef is a parsed relation.column pair.
type colRef struct {
	rel, col string
	tok      token
}

func (p *parser) parseColRef() (colRef, error) {
	rel, err := p.expect(tokIdent)
	if err != nil {
		return colRef{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return colRef{}, err
	}
	col, err := p.expect(tokIdent)
	if err != nil {
		return colRef{}, err
	}
	return colRef{rel: rel.text, col: col.text, tok: rel}, nil
}

// parseSel parses SEL '(' number ')'.
func (p *parser) parseSel() (float64, error) {
	if err := p.expectKeyword("SEL"); err != nil {
		return 0, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return 0, err
	}
	num, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return 0, p.errf(num, "bad selectivity %q: %v", num.text, err)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return 0, err
	}
	return v, nil
}

func (p *parser) parsePredicate() error {
	if p.cur().isKeyword("NOT") {
		return p.parseAntiJoin()
	}
	left, err := p.parseColRef()
	if err != nil {
		return err
	}
	op := p.next()
	switch op.kind {
	case tokLess, tokGreaterEq:
		sel, err := p.parseSel()
		if err != nil {
			return err
		}
		errProne := p.eatQuestion()
		if op.kind == tokLess {
			p.b.SelectionPred(left.rel, left.col, sel, errProne)
		} else {
			p.b.NegatedSelectionPred(left.rel, left.col, sel, errProne)
		}
		return nil

	case tokEquals:
		right, err := p.parseColRef()
		if err != nil {
			return err
		}
		sel, hasSel := 0.0, false
		if p.cur().isKeyword("SEL") {
			sel, err = p.parseSel()
			if err != nil {
				return err
			}
			hasSel = true
		}
		errProne := p.eatQuestion()
		if !hasSel {
			sel, err = p.defaultJoinSel(left, right)
			if err != nil {
				return err
			}
		}
		p.b.JoinPred(left.rel, left.col, right.rel, right.col, sel, errProne)
		return nil

	default:
		return p.errf(op, "expected '<', '>=' or '=', got %q", op.text)
	}
}

// parseAntiJoin parses NOT EXISTS '(' outer.col '=' inner.col ')' SEL(f)
// ['?'] — the existential predicate, whose SEL(f) is the default *pass
// fraction* of outer rows (the §2 axis flip makes this the ESS value).
func (p *parser) parseAntiJoin() error {
	if err := p.expectKeyword("NOT"); err != nil {
		return err
	}
	if err := p.expectKeyword("EXISTS"); err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	outer, err := p.parseColRef()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokEquals); err != nil {
		return err
	}
	inner, err := p.parseColRef()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if !p.cur().isKeyword("SEL") {
		return p.errf(p.cur(), "NOT EXISTS needs an explicit pass fraction: annotate with SEL(f)")
	}
	sel, err := p.parseSel()
	if err != nil {
		return err
	}
	errProne := p.eatQuestion()
	p.b.AntiJoinPred(outer.rel, outer.col, inner.rel, inner.col, sel, errProne)
	return nil
}

func (p *parser) eatQuestion() bool {
	if p.cur().kind == tokQuestion {
		p.next()
		return true
	}
	return false
}

// defaultJoinSel derives the clean PK-FK selectivity when one side of an
// equi-join is a key column.
func (p *parser) defaultJoinSel(left, right colRef) (float64, error) {
	for _, side := range []colRef{left, right} {
		rel := p.cat.Relation(side.rel)
		if rel == nil {
			return 0, p.errf(side.tok, "unknown relation %q", side.rel)
		}
		col := rel.Column(side.col)
		if col == nil {
			return 0, p.errf(side.tok, "unknown column %s.%s", side.rel, side.col)
		}
		if col.Type == catalog.TypeKey {
			return query.PKFKSel(p.cat, side.rel), nil
		}
	}
	return 0, p.errf(left.tok,
		"join %s.%s = %s.%s has no key side; annotate it with SEL(f)",
		left.rel, left.col, right.rel, right.col)
}
