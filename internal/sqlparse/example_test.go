package sqlparse_test

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
)

// ExampleParse parses the paper's example query EQ (Figure 1) with its
// price selectivity marked error-prone.
func ExampleParse() {
	cat := catalog.TPCHLike(1.0)
	q, err := sqlparse.Parse("EQ", cat, `
		SELECT * FROM part, lineitem, orders
		WHERE part.p_retailprice < sel(0.10)?
		  AND part.p_partkey = lineitem.l_partkey
		  AND lineitem.l_orderkey = orders.o_orderkey`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	fmt.Printf("error dimensions: %d, shape: %s\n", q.Dims(), q.JoinGraphShape())
	// Output:
	// select * from part, lineitem, orders where part.p_retailprice < c? and part.p_partkey = lineitem.l_partkey and lineitem.l_orderkey = orders.o_orderkey
	// error dimensions: 1, shape: chain(3)
}
