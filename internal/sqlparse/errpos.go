package sqlparse

import (
	"fmt"
	"strings"
)

// caretContext resolves byte offset pos in input to a 1-based line and
// column plus a trimmed window of the offending line, so parse errors in
// multi-line queries (the corpus generator emits one predicate per line)
// point at the culprit instead of a bare byte offset. pos may equal
// len(input) (the EOF token).
func caretContext(input string, pos int) (line, col int, window string) {
	if pos > len(input) {
		pos = len(input)
	}
	start := 0
	line = 1
	for i := 0; i < pos; i++ {
		if input[i] == '\n' {
			line++
			start = i + 1
		}
	}
	end := len(input)
	if i := strings.IndexByte(input[start:], '\n'); i >= 0 {
		end = start + i
	}
	col = pos - start + 1
	window = trimWindow(input[start:end], pos-start)
	return line, col, window
}

// trimWindow returns at most ~40 bytes of text centered on offset off,
// with ellipses marking truncation.
func trimWindow(text string, off int) string {
	const half = 20
	lo, hi := 0, len(text)
	pre, post := "", ""
	if off-half > lo {
		lo = off - half
		pre = "…"
	}
	if off+half < hi {
		hi = off + half
		post = "…"
	}
	return pre + text[lo:hi] + post
}

// posErrf builds the shared error shape for lexer and parser diagnostics:
// "sqlparse: line L:C: <message> (near "…")".
func posErrf(input string, pos int, format string, args ...interface{}) error {
	line, col, window := caretContext(input, pos)
	msg := fmt.Sprintf(format, args...)
	if window == "" {
		return fmt.Errorf("sqlparse: line %d:%d: %s", line, col, msg)
	}
	return fmt.Errorf("sqlparse: line %d:%d: %s (near %q)", line, col, msg, window)
}
