// Package sqlparse parses a SQL-like surface syntax into internal/query
// queries, so workloads can be written the way the paper presents them
// (Figure 1) rather than through builder calls:
//
//	SELECT * FROM part, lineitem, orders
//	WHERE part.p_retailprice < sel(0.10)?
//	  AND part.p_partkey = lineitem.l_partkey
//	  AND lineitem.l_orderkey = orders.o_orderkey
//
// Semantics follow the reproduction's abstraction: a selection predicate's
// constant is its *selectivity* (written sel(f)), a trailing '?' marks the
// predicate error-prone (an ESS dimension), '>=' spells a negated
// selection, and join predicates default to the clean PK-FK selectivity
// when one side is a key column (an explicit sel(f) overrides). SELECT
// COUNT(*) roots the plans at a scalar aggregate.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokStar
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokLess
	tokGreaterEq
	tokEquals
	tokQuestion
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokStar:
		return "'*'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLess:
		return "'<'"
	case tokGreaterEq:
		return "'>='"
	case tokEquals:
		return "'='"
	case tokQuestion:
		return "'?'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes the input; keywords are case-insensitive identifiers.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '*':
			out = append(out, token{tokStar, "*", i})
			i++
		case c == ',':
			out = append(out, token{tokComma, ",", i})
			i++
		case c == '.':
			out = append(out, token{tokDot, ".", i})
			i++
		case c == '(':
			out = append(out, token{tokLParen, "(", i})
			i++
		case c == ')':
			out = append(out, token{tokRParen, ")", i})
			i++
		case c == '<':
			out = append(out, token{tokLess, "<", i})
			i++
		case c == '=':
			out = append(out, token{tokEquals, "=", i})
			i++
		case c == '?':
			out = append(out, token{tokQuestion, "?", i})
			i++
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				out = append(out, token{tokGreaterEq, ">=", i})
				i += 2
			} else {
				return nil, posErrf(input, i, "'>' must be '>=' (selections are range predicates)")
			}
		case unicode.IsDigit(c):
			j := i
			seenDot := false
			seenExp := false
			for j < len(input) {
				ch := input[j]
				if ch >= '0' && ch <= '9' {
					j++
					continue
				}
				// A '.' is part of the number only when followed
				// by a digit (so "0.5" lexes whole but trailing
				// dots do not).
				if ch == '.' && !seenDot && j+1 < len(input) && input[j+1] >= '0' && input[j+1] <= '9' {
					seenDot = true
					j++
					continue
				}
				if (ch == 'e' || ch == 'E') && !seenExp && j+1 < len(input) {
					next := input[j+1]
					if next == '-' || next == '+' || (next >= '0' && next <= '9') {
						seenExp = true
						j += 2
						continue
					}
				}
				break
			}
			out = append(out, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			out = append(out, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, posErrf(input, i, "unexpected character %q", c)
		}
	}
	out = append(out, token{tokEOF, "", len(input)})
	return out, nil
}

// isKeyword reports a case-insensitive identifier match.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
