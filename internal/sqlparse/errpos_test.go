package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/catalog"
)

// TestErrorsReportLineAndColumn pins the diagnostic upgrade the corpus
// generator motivated: its queries are multi-line (one predicate per
// line), so a bare byte offset was useless for locating the bad predicate.
func TestErrorsReportLineAndColumn(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	cases := []struct {
		name, input string
		wantIn      []string
	}{
		{
			name:   "parse error on second line",
			input:  "SELECT * FROM part, lineitem\nWHERE part.p_partkey = = lineitem.l_partkey",
			wantIn: []string{"line 2:24", "near"},
		},
		{
			name:   "lex error locates the character",
			input:  "SELECT * FROM part\nWHERE part.p_retailprice < sel(0.1)\n  AND part.p_size < #",
			wantIn: []string{"line 3:21", "unexpected character", `near "  AND part.p_size < #"`},
		},
		{
			name:   "bare greater-than",
			input:  "SELECT * FROM part WHERE part.p_size > sel(0.1)",
			wantIn: []string{"line 1:38", "'>' must be '>='"},
		},
		{
			name:   "error at end of input",
			input:  "SELECT * FROM part\nWHERE",
			wantIn: []string{"line 2:6", "expected"},
		},
		{
			name:   "long line is windowed",
			input:  "SELECT * FROM part WHERE part.p_retailprice < sel(0.1) AND part.p_size < sel(0.2) AND part.p_partkey < sel(0.3) AND part.p_container < 7",
			wantIn: []string{"line 1:136", "…"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("t", cat, tc.input)
			if err == nil {
				t.Fatal("parse unexpectedly succeeded")
			}
			for _, want := range tc.wantIn {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q should contain %q", err, want)
				}
			}
		})
	}
}

func TestCaretContext(t *testing.T) {
	input := "abc\ndefgh\nij"
	line, col, window := caretContext(input, 6) // the 'f'
	if line != 2 || col != 3 || window != "defgh" {
		t.Fatalf("got line %d col %d window %q", line, col, window)
	}
	line, col, _ = caretContext(input, len(input)) // EOF
	if line != 3 || col != 3 {
		t.Fatalf("EOF resolved to line %d col %d", line, col)
	}
	// Past-the-end offsets clamp rather than panic.
	if l, c, _ := caretContext(input, len(input)+5); l != 3 || c != 3 {
		t.Fatalf("clamped offset resolved to line %d col %d", l, c)
	}
	if _, _, w := caretContext("", 0); w != "" {
		t.Fatalf("empty input yielded window %q", w)
	}
}
