package sqlparse

import (
	"testing"

	"repro/internal/catalog"
)

// FuzzParse checks the parser never panics and that accepted inputs yield
// structurally valid queries. `go test` runs the seed corpus; `go test
// -fuzz=FuzzParse ./internal/sqlparse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		eqText,
		`SELECT COUNT(*) FROM part WHERE part.p_retailprice < sel(0.5)?`,
		`SELECT * FROM part WHERE part.p_retailprice >= sel(0.25)`,
		`SELECT * FROM part, lineitem WHERE part.p_partkey = lineitem.l_partkey sel(0.001)?`,
		`select`, `SELECT * FROM`, `SELECT * FROM part WHERE`, `???`,
		`SELECT * FROM part WHERE part.p_retailprice < sel(1e309)`,
		`SELECT * FROM part WHERE part.p_retailprice < sel(-1)`,
		`SELECT * FROM part WHERE part.p_retailprice < sel(0..1)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := catalog.TPCHLike(0.01)
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse("fuzz", cat, input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if q == nil {
			t.Fatal("nil query without error")
		}
		if len(q.Relations()) == 0 {
			t.Fatal("accepted query without relations")
		}
		for _, p := range q.Predicates() {
			if p.DefaultSel <= 0 || p.DefaultSel > 1 {
				t.Fatalf("accepted predicate with selectivity %g", p.DefaultSel)
			}
		}
	})
}
