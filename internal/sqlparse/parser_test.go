package sqlparse

import (
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/query"
)

const eqText = `
	SELECT * FROM part, lineitem, orders
	WHERE part.p_retailprice < sel(0.10)?
	  AND part.p_partkey = lineitem.l_partkey
	  AND lineitem.l_orderkey = orders.o_orderkey`

func TestParseEQ(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q, err := Parse("EQ", cat, eqText)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Relations(); len(got) != 3 || got[0] != "part" || got[2] != "orders" {
		t.Fatalf("relations = %v", got)
	}
	if q.NumPredicates() != 3 || q.Dims() != 1 {
		t.Fatalf("preds = %d, dims = %d", q.NumPredicates(), q.Dims())
	}
	sel := q.Predicate(0)
	if sel.Kind != query.Selection || !sel.ErrorProne || sel.DefaultSel != 0.10 || sel.Negated {
		t.Fatalf("selection predicate parsed as %+v", sel)
	}
	// Joins picked the PK-FK default.
	j1 := q.Predicate(1)
	if j1.Kind != query.Join || j1.ErrorProne {
		t.Fatalf("join predicate parsed as %+v", j1)
	}
	if want := query.PKFKSel(cat, "part"); math.Abs(j1.DefaultSel-want) > 1e-15 {
		t.Fatalf("join default sel = %g, want PKFK %g", j1.DefaultSel, want)
	}
	if q.Aggregate() {
		t.Fatal("SELECT * should not be an aggregate")
	}
}

func TestParseMatchesBuilder(t *testing.T) {
	// Parsing EQ text yields the same query the builder constructs.
	cat := catalog.TPCHLike(0.01)
	parsed, err := Parse("EQ", cat, eqText)
	if err != nil {
		t.Fatal(err)
	}
	built := query.NewBuilder("EQ", cat).
		Relation("part").Relation("lineitem").Relation("orders").
		SelectionPred("part", "p_retailprice", 0.10, true).
		JoinPred("part", "p_partkey", "lineitem", "l_partkey", query.PKFKSel(cat, "part"), false).
		JoinPred("lineitem", "l_orderkey", "orders", "o_orderkey", query.PKFKSel(cat, "orders"), false).
		MustBuild()
	if parsed.String() != built.String() {
		t.Fatalf("parsed %q\nbuilt  %q", parsed.String(), built.String())
	}
}

func TestParseCountAggregate(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q, err := Parse("agg", cat, `SELECT COUNT(*) FROM part WHERE part.p_retailprice < sel(0.5)?`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Aggregate() {
		t.Fatal("COUNT(*) did not set aggregate")
	}
}

func TestParseNegatedSelection(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q, err := Parse("neg", cat, `SELECT * FROM part WHERE part.p_retailprice >= sel(0.25)?`)
	if err != nil {
		t.Fatal(err)
	}
	p := q.Predicate(0)
	if !p.Negated || p.DefaultSel != 0.25 || !p.ErrorProne {
		t.Fatalf("negated predicate parsed as %+v", p)
	}
}

func TestParseJoinSelOverride(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q, err := Parse("cyc", cat, `
		SELECT * FROM part, orders, lineitem
		WHERE part.p_partkey = lineitem.l_partkey
		  AND lineitem.l_orderkey = orders.o_orderkey
		  AND part.p_size = orders.o_orderdate sel(0.001)?`)
	if err != nil {
		t.Fatal(err)
	}
	last := q.Predicate(2)
	if last.DefaultSel != 0.001 || !last.ErrorProne {
		t.Fatalf("override parsed as %+v", last)
	}
	if got := q.JoinGraphShape(); got != "cycle(3)" {
		t.Fatalf("shape = %s", got)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	if _, err := Parse("ci", cat, `select * from part where part.p_retailprice < SEL(0.1)`); err != nil {
		t.Fatal(err)
	}
}

func TestParseScientificSelectivity(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q, err := Parse("sci", cat, `SELECT * FROM part WHERE part.p_retailprice < sel(2.5e-3)?`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Predicate(0).DefaultSel != 2.5e-3 {
		t.Fatalf("sel = %g", q.Predicate(0).DefaultSel)
	}
}

func TestParseErrors(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	cases := []struct {
		name, in, want string
	}{
		{"missing select", `FROM part WHERE x.y < sel(1)`, "expected SELECT"},
		{"bad target", `SELECT x FROM part WHERE a.b < sel(1)`, "expected '*' or COUNT"},
		{"missing where", `SELECT * FROM part`, "expected WHERE"},
		{"bare column", `SELECT * FROM part WHERE p_retailprice < sel(0.1)`, "expected '.'"},
		{"strict greater", `SELECT * FROM part WHERE part.p_retailprice > sel(0.1)`, "'>' must be '>='"},
		{"selection needs sel()", `SELECT * FROM part WHERE part.p_retailprice < 0.1`, "expected SEL"},
		{"join without key", `SELECT * FROM part, lineitem WHERE part.p_size = lineitem.l_quantity AND part.p_partkey = lineitem.l_partkey`, "no key side"},
		{"unknown relation in FROM", `SELECT * FROM ghost WHERE ghost.x < sel(0.1)`, "unknown relation"},
		{"unknown column", `SELECT * FROM part WHERE part.ghost < sel(0.1)`, "unknown column"},
		{"bad selectivity range", `SELECT * FROM part WHERE part.p_retailprice < sel(7)`, "out of (0,1]"},
		{"trailing garbage", `SELECT * FROM part WHERE part.p_retailprice < sel(0.1) HAVING`, "trailing input"},
		{"dangling group", `SELECT * FROM part WHERE part.p_retailprice < sel(0.1) GROUP`, "expected BY"},
		{"unterminated sel", `SELECT * FROM part WHERE part.p_retailprice < sel(0.1`, "expected ')'"},
		{"stray char", `SELECT * FROM part WHERE part.p_retailprice < sel(0.1); DROP`, "unexpected character"},
		{"disconnected", `SELECT * FROM part, orders WHERE part.p_retailprice < sel(0.1)`, "not connected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("q", cat, tc.in)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) error = %v, want containing %q", tc.in, err, tc.want)
			}
		})
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lex("a.b < sel(0.5)")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokDot, tokIdent, tokLess, tokIdent, tokLParen, tokNumber, tokRParen, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens", len(toks))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
	if toks[6].text != "0.5" {
		t.Fatalf("number lexed as %q", toks[6].text)
	}
}

// TestParsedQueryRunsEndToEnd compiles a bouquet from a parsed query — the
// full textual pipeline.
func TestParsedQueryRunsEndToEnd(t *testing.T) {
	cat := catalog.TPCHLike(0.1)
	q, err := Parse("e2e", cat, eqText)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dims() != 1 {
		t.Fatal("wrong dims")
	}
	// The query feeds the standard machinery (a smoke check; full
	// bouquet behaviour is covered in internal/core).
	if q.Catalog != cat {
		t.Fatal("catalog not threaded")
	}
}

func TestParseNotExists(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q, err := Parse("anti", cat, `
		SELECT * FROM orders, lineitem, part
		WHERE orders.o_orderkey = lineitem.l_orderkey
		  AND NOT EXISTS (lineitem.l_partkey = part.p_partkey) sel(0.3)?`)
	if err != nil {
		t.Fatal(err)
	}
	p := q.Predicate(1)
	if p.Kind != query.AntiJoin || p.DefaultSel != 0.3 || !p.ErrorProne {
		t.Fatalf("anti predicate parsed as %+v", p)
	}
	if !strings.Contains(q.String(), "not exists") {
		t.Fatalf("String() = %s", q.String())
	}
}

func TestParseNotExistsNeedsSel(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	_, err := Parse("anti", cat, `
		SELECT * FROM lineitem, part
		WHERE NOT EXISTS (lineitem.l_partkey = part.p_partkey)`)
	if err == nil || !strings.Contains(err.Error(), "pass fraction") {
		t.Fatalf("NOT EXISTS without SEL accepted: %v", err)
	}
}

func TestParseGroupBy(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q, err := Parse("g", cat, `
		SELECT * FROM part, lineitem
		WHERE part.p_retailprice < sel(0.1)?
		  AND part.p_partkey = lineitem.l_partkey
		GROUP BY part.p_brand`)
	if err != nil {
		t.Fatal(err)
	}
	col, ok := q.GroupBy()
	if !ok || col.Relation != "part" || col.Column != "p_brand" {
		t.Fatalf("GroupBy = %v, %v", col, ok)
	}
	// Bad grouping column.
	if _, err := Parse("g", cat, `
		SELECT * FROM part WHERE part.p_retailprice < sel(0.1)? GROUP BY part.ghost`); err == nil {
		t.Fatal("unknown group column accepted")
	}
}
