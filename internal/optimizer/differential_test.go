package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/workload"
)

// This file proves the DP-skeleton refactor is observationally identical to
// the seed optimizer: seedOptimize below is a line-for-line port of the
// pre-skeleton Optimize (per-call connectedMask / joinPredsBetween /
// Detail-based pricing), and the tests assert bit-identical costs and
// identical plan fingerprints across every workload and under randomly
// perturbed cost models.

type seedEntry struct {
	node *plan.Node
	cost cost.Cost
	rows cost.Card
	wide float64
}

func seedEntryFor(o *Optimizer, n *plan.Node, sels cost.Selectivities) seedEntry {
	nc := o.coster.Detail(n, sels)
	root := nc[len(nc)-1]
	return seedEntry{node: n, cost: root.TotalCost, rows: root.Rows, wide: root.Width}
}

func seedCheaper(a, b seedEntry) seedEntry {
	switch {
	case b.node == nil:
		return a
	case a.node == nil:
		return b
	case b.cost < a.cost:
		return b
	case b.cost > a.cost:
		return a
	case b.node.Fingerprint() < a.node.Fingerprint():
		return b
	default:
		return a
	}
}

func seedBestAccessPath(o *Optimizer, i int, sels cost.Selectivities) seedEntry {
	rel := o.rels[i]
	preds := o.selPred[i]
	best := seedEntryFor(o, plan.NewSeqScan(rel, preds), sels)
	for _, id := range preds {
		col := o.q.Predicate(id).Left.Column
		if !o.q.Catalog.HasIndex(rel, col) {
			continue
		}
		best = seedCheaper(best, seedEntryFor(o, plan.NewIndexScan(rel, col, preds), sels))
	}
	return best
}

func seedConsiderJoins(o *Optimizer, best *seedEntry, left, right seedEntry, rightMask uint64, preds []int, sels cost.Selectivities) {
	for _, id := range preds {
		p := o.q.Predicate(id)
		if p.Kind != query.AntiJoin {
			continue
		}
		if len(preds) == 1 && bits.OnesCount64(rightMask) == 1 &&
			o.rels[bits.TrailingZeros64(rightMask)] == p.Right.Relation {
			anti := seedEntryFor(o, plan.NewAntiJoin(left.node, p.Right.Relation, p.Right.Column, id), sels)
			*best = seedCheaper(*best, anti)
		}
		return
	}

	*best = seedCheaper(*best, seedEntryFor(o, plan.NewHashJoin(left.node, right.node, preds), sels))
	*best = seedCheaper(*best, seedEntryFor(o, plan.NewMergeJoin(left.node, right.node, preds), sels))

	if bits.OnesCount64(rightMask) == 1 {
		ri := bits.TrailingZeros64(rightMask)
		innerRel := o.rels[ri]
		for _, id := range preds {
			p := o.q.Predicate(id)
			var col string
			switch innerRel {
			case p.Left.Relation:
				col = p.Left.Column
			case p.Right.Relation:
				col = p.Right.Column
			default:
				continue
			}
			if !o.q.Catalog.HasIndex(innerRel, col) {
				continue
			}
			all := append(append([]int{}, preds...), o.selPred[ri]...)
			nl := seedEntryFor(o, plan.NewIndexNLJoin(left.node, innerRel, col, all), sels)
			*best = seedCheaper(*best, nl)
		}
	}
}

// seedOptimize replays the pre-skeleton per-call DP verbatim: fresh memo,
// connectivity and join-predicate discovery inside the call, Detail-based
// candidate pricing.
func seedOptimize(o *Optimizer, sels cost.Selectivities) Result {
	n := len(o.rels)
	full := uint64(1)<<uint(n) - 1
	memo := make([]seedEntry, full+1)

	for i := 0; i < n; i++ {
		memo[1<<uint(i)] = seedBestAccessPath(o, i, sels)
	}

	for m := uint64(1); m <= full; m++ {
		if bits.OnesCount64(m) < 2 || !o.connectedMask(m) {
			continue
		}
		best := seedEntry{cost: cost.Cost(math.Inf(1))}
		for sub := (m - 1) & m; sub > 0; sub = (sub - 1) & m {
			left, right := sub, m&^sub
			if memo[left].node == nil || memo[right].node == nil {
				continue
			}
			preds := o.joinPredsBetween(left, right)
			if len(preds) == 0 {
				continue
			}
			seedConsiderJoins(o, &best, memo[left], memo[right], right, preds, sels)
		}
		memo[m] = best
	}

	final := memo[full]
	if final.node == nil {
		panic(fmt.Sprintf("optimizer: no plan for query %s", o.q.Name))
	}
	if col, ok := o.q.GroupBy(); ok {
		g := seedEntryFor(o, plan.NewGroupAggregate(final.node, col.Relation, col.Column), sels)
		return Result{Plan: g.node, Cost: g.cost}
	}
	if o.q.Aggregate() {
		agg := seedEntryFor(o, plan.NewAggregate(final.node), sels)
		return Result{Plan: agg.node, Cost: agg.cost}
	}
	return Result{Plan: final.node, Cost: final.cost}
}

// diffLocations samples grid locations deterministically: all corners of
// small spaces, a strided subset of large ones.
func diffLocations(n int) []int {
	stride := 1
	if n > 64 {
		stride = n / 64
	}
	var out []int
	for f := 0; f < n; f += stride {
		out = append(out, f)
	}
	if out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

func assertIdentical(t *testing.T, label string, opt *Optimizer, sels cost.Selectivities) {
	t.Helper()
	want := seedOptimize(opt, sels)
	got := opt.Optimize(sels)
	if got.Cost != want.Cost {
		t.Fatalf("%s: cost diverged: skeleton %v, seed %v (Δ=%g)",
			label, got.Cost, want.Cost, (got.Cost - want.Cost).F())
	}
	if got.Plan.Fingerprint() != want.Plan.Fingerprint() {
		t.Fatalf("%s: plan diverged:\n skeleton: %s\n seed:     %s",
			label, got.Plan.Fingerprint(), want.Plan.Fingerprint())
	}
}

// TestDifferentialAllWorkloads checks bit-identical plans and costs on all
// ten Table-2 workloads at a small grid resolution.
func TestDifferentialAllWorkloads(t *testing.T) {
	for _, w := range workload.All(4) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			opt := New(cost.NewCoster(w.Query, w.Model))
			for _, flat := range diffLocations(w.Space.NumPoints()) {
				sels := w.Space.Sels(w.Space.PointAt(flat))
				assertIdentical(t, fmt.Sprintf("%s@%d", w.Name, flat), opt, sels)
			}
		})
	}
}

// TestDifferentialRandomModels re-runs the comparison under randomly scaled
// cost-model parameters, so agreement is not an artifact of the tuned
// PostgreSQL numbers.
func TestDifferentialRandomModels(t *testing.T) {
	seeds := []int64{7, 42, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	base := cost.PostgresParams()
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		scale := func(v float64) float64 { return v * (0.2 + 4.8*rng.Float64()) }
		model := cost.Model{Name: fmt.Sprintf("random-%d", seed), P: cost.Params{
			SeqPageCost:       scale(base.SeqPageCost),
			RandomPageCost:    scale(base.RandomPageCost),
			CPUTupleCost:      scale(base.CPUTupleCost),
			CPUIndexTupleCost: scale(base.CPUIndexTupleCost),
			CPUOperatorCost:   scale(base.CPUOperatorCost),
			HashQualCost:      scale(base.HashQualCost),
			SortCmpCost:       scale(base.SortCmpCost),
			WorkMemBytes:      scale(base.WorkMemBytes),
			SpillPageCost:     scale(base.SpillPageCost),
		}}
		for _, w := range []*workload.Workload{workload.EQ2D(6), workload.HQ8(3), workload.DSQ26(3)} {
			opt := New(cost.NewCoster(w.Query, model))
			for _, flat := range diffLocations(w.Space.NumPoints()) {
				sels := w.Space.Sels(w.Space.PointAt(flat))
				assertIdentical(t, fmt.Sprintf("%s/model=%d@%d", w.Name, seed, flat), opt, sels)
			}
		}
	}
}

// TestDifferentialPerturbedCoster checks the comparison through
// WithPerturbation, which prices per-node factors keyed on fingerprints —
// exercising the fast path's guarantee that real nodes reach the model.
func TestDifferentialPerturbedCoster(t *testing.T) {
	w := workload.EQ2D(6)
	c := cost.NewCoster(w.Query, w.Model).WithPerturbation(0.3, 99)
	opt := New(c)
	for _, flat := range diffLocations(w.Space.NumPoints()) {
		sels := w.Space.Sels(w.Space.PointAt(flat))
		assertIdentical(t, fmt.Sprintf("perturbed@%d", flat), opt, sels)
	}
}
