package optimizer

import (
	"testing"

	"repro/internal/cost"
)

// Allocation-regression ceilings for the compile hot path. The skeleton
// refactor plus winner-only candidate materialization brought Optimize on
// the 3-relation chain from ~149 allocs/call down to ~5 (the winning plan
// nodes and occasional tie-break fingerprints); the ceilings below leave
// modest headroom so benign churn doesn't flake, while catching any
// reintroduction of per-call skeleton rebuilding, per-candidate node
// construction, or Detail-slice pricing.

func TestOptimizeAllocCeilingChain3(t *testing.T) {
	q := chainQuery(t, 3)
	opt := newOpt(t, q)
	sels := cost.DefaultSels(q)
	// Warm the memo arena and fingerprint memos before measuring.
	for i := 0; i < 3; i++ {
		opt.Optimize(sels)
	}
	const ceiling = 12
	if got := testing.AllocsPerRun(50, func() { opt.Optimize(sels) }); got > ceiling {
		t.Errorf("Optimize(chain3) allocates %.0f/call, ceiling %d", got, ceiling)
	}
}

func TestAbstractCostAllocFree(t *testing.T) {
	q := chainQuery(t, 3)
	opt := newOpt(t, q)
	sels := cost.DefaultSels(q)
	p := opt.Optimize(sels).Plan
	p.Fingerprint() // memoize before measuring
	if got := testing.AllocsPerRun(50, func() { opt.AbstractCost(p, sels) }); got > 0 {
		t.Errorf("AbstractCost allocates %.0f/call, want 0", got)
	}
}
