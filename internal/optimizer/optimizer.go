// Package optimizer implements a System-R style cost-based query optimizer:
// dynamic programming over connected relation subsets, with access-path and
// physical-join-operator selection driven by the cost model.
//
// Its defining capability for the bouquet technique is selectivity
// injection (§4.2): Optimize takes an explicit selectivity assignment and
// returns the plan that is optimal *at that assignment*. Repeated calls
// across the ESS grid produce the parametric optimal set of plans (POSP).
//
// The optimizer deliberately mirrors a conventional engine: it picks the
// single cheapest plan per subset and breaks ties deterministically, so the
// same inputs always yield the same plan (a prerequisite for the paper's
// repeatability claim).
//
// Because bouquet compilation issues one Optimize call per ESS grid
// location — tens of thousands for high-resolution or 5-D spaces — the
// per-call cost is the paper's §6.1 overhead axis. Everything about the
// join order search that does not depend on the injected selectivities is
// therefore hoisted into a one-time DP skeleton at construction: the
// connected subset masks in DP order, the valid (left, right) splits per
// mask with their join predicates, the index-nested-loops candidates, and
// the access-path candidate nodes. Optimize itself only prices candidates
// (via the cost package's O(1) PriceStep kernel over memoized child
// summaries) and materializes winners, with its memo drawn from a pooled
// arena so steady-state calls allocate only the winning plan nodes.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
)

// totalCalls accumulates Optimize invocations across every Optimizer
// instance in the process. Servers export it as operational telemetry
// (compile-time overhead is the paper's §6.1 cost axis); per-instance
// counts remain available via Calls.
var totalCalls atomic.Int64

// TotalCalls returns the process-wide number of Optimize invocations,
// summed over all Optimizer instances ever constructed. It is monotone
// (never reset by ResetCalls) and safe for concurrent use.
func TotalCalls() int64 { return totalCalls.Load() }

// Optimizer enumerates plans for one query under one Coster. It is safe
// for concurrent use: the skeleton is read-only after New and per-call
// memo state comes from an internal arena pool.
type Optimizer struct {
	q      *query.Query
	coster *cost.Coster

	rels    []string       // relation names, index = bit position
	relBit  map[string]int // name -> bit position
	adj     []uint64       // adjacency bitmask per relation
	selPred [][]int        // selection predicate IDs per relation

	// DP skeleton — everything the join search knows before seeing a
	// single selectivity (computed once in New).
	access [][]*plan.Node // per relation: candidate access-path nodes
	masks  []maskPlan     // connected ≥2-relation masks, ascending
	full   uint64         // mask covering every relation

	// arena pools per-call memo slices (length full+1) so steady-state
	// Optimize calls produce no memo garbage.
	arena sync.Pool

	// specPrice enables node-free candidate pricing (PriceSpec): true
	// unless the coster perturbs per-node costs, which requires real
	// nodes for fingerprint-keyed factors.
	specPrice bool

	calls atomic.Int64
}

// maskPlan is one connected relation subset with its precomputed valid
// splits, in the DP's deterministic enumeration order.
type maskPlan struct {
	mask   uint64
	splits []split
}

// split is one ordered (left = probe/outer, right = build/inner) partition
// of a mask into two connected halves joined by at least one predicate.
// All slices are pre-sorted and shared by every plan node built from this
// split; plan nodes are immutable, so sharing is safe.
type split struct {
	left, right uint64
	// anti, when non-nil, marks an anti-join split: the single anti
	// predicate admits exactly one operator shape, and no generic join
	// applies.
	anti *antiCand
	// preds are the join predicate IDs connecting the halves (ascending),
	// applied by hash and merge join candidates.
	preds []int
	// nl are the index nested-loops candidates (right half is a single
	// indexed base relation).
	nl []nlCand
}

// antiCand is the sole candidate of an anti-join split: a hash anti-join
// consuming the inner base relation.
type antiCand struct {
	rel, col string
	preds    []int // the single anti-join predicate ID
}

// nlCand is one index nested-loops candidate: probe rel's index on col,
// applying preds (the join predicates plus the inner relation's selection
// predicates, folded in as residual filters; ascending).
type nlCand struct {
	rel, col string
	preds    []int
}

// New builds an optimizer for coster's query, precomputing the
// selectivity-independent DP skeleton. It panics if the query has more
// than 64 relations (bitmask representation).
func New(coster *cost.Coster) *Optimizer {
	q := coster.Query()
	rels := q.Relations()
	if len(rels) > 64 {
		panic("optimizer: too many relations")
	}
	o := &Optimizer{
		q:       q,
		coster:  coster,
		rels:    rels,
		relBit:  make(map[string]int, len(rels)),
		adj:     make([]uint64, len(rels)),
		selPred: make([][]int, len(rels)),
	}
	for i, r := range rels {
		o.relBit[r] = i
	}
	for _, p := range q.Predicates() {
		switch p.Kind {
		case query.Selection:
			i := o.relBit[p.Left.Relation]
			o.selPred[i] = append(o.selPred[i], p.ID)
		case query.Join, query.AntiJoin:
			l := o.relBit[p.Left.Relation]
			r := o.relBit[p.Right.Relation]
			o.adj[l] |= 1 << uint(r)
			o.adj[r] |= 1 << uint(l)
		}
	}
	o.specPrice = !coster.Perturbed()
	o.buildSkeleton()
	size := o.full + 1
	o.arena.New = func() any {
		s := make([]memoEntry, size)
		return &s
	}
	return o
}

// buildSkeleton precomputes the DP structure: access-path candidate nodes
// per relation, and per connected mask the valid splits with their join
// predicates and index-NL candidates. Everything here is independent of
// the injected selectivities, so Optimize never re-derives it.
func (o *Optimizer) buildSkeleton() {
	n := len(o.rels)
	o.full = uint64(1)<<uint(n) - 1

	// Base case: candidate access paths per relation — a sequential scan
	// plus an index scan per indexed selection-predicate column, in
	// predicate order (the tie-break enumeration order of the original
	// per-call loop).
	o.access = make([][]*plan.Node, n)
	for i, rel := range o.rels {
		preds := o.selPred[i]
		cands := []*plan.Node{plan.NewSeqScan(rel, preds)}
		for _, id := range preds {
			col := o.q.Predicate(id).Left.Column
			if !o.q.Catalog.HasIndex(rel, col) {
				continue
			}
			cands = append(cands, plan.NewIndexScan(rel, col, preds))
		}
		o.access[i] = cands
	}

	// Inductive case: connected masks in increasing numeric order (every
	// proper submask of m is numerically smaller than m, so this is a
	// valid DP order), each with its feasible ordered splits.
	for m := uint64(1); m <= o.full; m++ {
		if bits.OnesCount64(m) < 2 || !o.connectedMask(m) {
			continue
		}
		mp := maskPlan{mask: m}
		for sub := (m - 1) & m; sub > 0; sub = (sub - 1) & m {
			left, right := sub, m&^sub
			// Disconnected halves never acquire memo entries; prune
			// their splits statically.
			if !o.connectedMask(left) || !o.connectedMask(right) {
				continue
			}
			preds := o.joinPredsBetween(left, right)
			if len(preds) == 0 {
				continue // would be a Cartesian product
			}
			sort.Ints(preds) // plan.Node.Preds are normalized ascending
			if sp, ok := o.buildSplit(left, right, preds); ok {
				mp.splits = append(mp.splits, sp)
			}
		}
		o.masks = append(o.masks, mp)
	}
}

// buildSplit assembles the candidate structure of one split. ok is false
// when the split admits no operator at all (an anti-join predicate in an
// invalid shape).
func (o *Optimizer) buildSplit(left, right uint64, preds []int) (split, bool) {
	// An anti-join predicate admits exactly one shape: the inner base
	// relation alone on the right, consumed by a hash anti-join.
	for _, id := range preds {
		p := o.q.Predicate(id)
		if p.Kind != query.AntiJoin {
			continue
		}
		if len(preds) == 1 && bits.OnesCount64(right) == 1 &&
			o.rels[bits.TrailingZeros64(right)] == p.Right.Relation {
			return split{
				left: left, right: right,
				anti: &antiCand{rel: p.Right.Relation, col: p.Right.Column, preds: preds},
			}, true
		}
		return split{}, false // no generic join operator applies to anti predicates
	}

	sp := split{left: left, right: right, preds: preds}

	// Index nested loops: inner must be a single base relation with an
	// index on (one of) the join columns. The inner's selection
	// predicates fold into the join node as residual filters.
	if bits.OnesCount64(right) == 1 {
		ri := bits.TrailingZeros64(right)
		innerRel := o.rels[ri]
		for _, id := range preds {
			p := o.q.Predicate(id)
			var col string
			switch innerRel {
			case p.Left.Relation:
				col = p.Left.Column
			case p.Right.Relation:
				col = p.Right.Column
			default:
				continue
			}
			if !o.q.Catalog.HasIndex(innerRel, col) {
				continue
			}
			all := append(append([]int{}, preds...), o.selPred[ri]...)
			sort.Ints(all)
			sp.nl = append(sp.nl, nlCand{rel: innerRel, col: col, preds: all})
		}
	}
	return sp, true
}

// Query returns the optimizer's query.
func (o *Optimizer) Query() *query.Query { return o.q }

// Coster returns the cost model binding.
func (o *Optimizer) Coster() *cost.Coster { return o.coster }

// Calls returns the number of Optimize invocations so far; the POSP
// generators use it to report compile-time overheads (§6.1).
func (o *Optimizer) Calls() int64 { return o.calls.Load() }

// ResetCalls zeroes the invocation counter.
func (o *Optimizer) ResetCalls() { o.calls.Store(0) }

// Result is an optimization outcome: the chosen plan and its cost at the
// injected selectivities.
type Result struct {
	// Plan is the cheapest plan found.
	Plan *plan.Node
	// Cost is Plan's total cost at the injected selectivities.
	Cost cost.Cost
}

type memoEntry struct {
	node *plan.Node
	sum  cost.Summary
}

// Optimize returns the optimal plan and cost at the injected selectivity
// assignment. sels must cover every predicate ID of the query. Panics on
// an under-length assignment or a query with no feasible plan (both are
// programming errors in the workload definition).
func (o *Optimizer) Optimize(sels cost.Selectivities) Result {
	o.calls.Add(1)
	totalCalls.Add(1)
	if len(sels) < o.q.NumPredicates() {
		panic(fmt.Sprintf("optimizer: selectivity assignment has %d entries, query has %d predicates",
			len(sels), o.q.NumPredicates()))
	}

	memop := o.arena.Get().(*[]memoEntry)
	memo := *memop
	clear(memo)

	// Base case: single relations — access path selection.
	for i := range o.rels {
		memo[1<<uint(i)] = o.bestAccessPath(i, sels)
	}

	// Inductive case: precomputed connected masks in DP order; each split
	// prices its candidates from the halves' memoized summaries.
	for mi := range o.masks {
		mp := &o.masks[mi]
		best := memoEntry{sum: cost.Summary{Cost: cost.Cost(math.Inf(1))}}
		for si := range mp.splits {
			sp := &mp.splits[si]
			l, r := memo[sp.left], memo[sp.right]
			if l.node == nil || r.node == nil {
				continue // a half with no feasible plan (anti-join shapes)
			}
			o.considerJoins(&best, l, r, sp, sels)
		}
		memo[mp.mask] = best
	}

	final := memo[o.full]
	o.arena.Put(memop)
	if final.node == nil {
		panic(fmt.Sprintf("optimizer: no plan for query %s", o.q.Name))
	}
	if col, ok := o.q.GroupBy(); ok {
		g := o.stepEntry(plan.NewGroupAggregate(final.node, col.Relation, col.Column), final, memoEntry{}, sels)
		return Result{Plan: g.node, Cost: g.sum.Cost}
	}
	if o.q.Aggregate() {
		agg := o.stepEntry(plan.NewAggregate(final.node), final, memoEntry{}, sels)
		return Result{Plan: agg.node, Cost: agg.sum.Cost}
	}
	return Result{Plan: final.node, Cost: final.sum.Cost}
}

// bestAccessPath prices the precomputed access-path candidates of
// relation index i and returns the cheapest.
func (o *Optimizer) bestAccessPath(i int, sels cost.Selectivities) memoEntry {
	cands := o.access[i]
	best := o.stepEntry(cands[0], memoEntry{}, memoEntry{}, sels)
	for _, c := range cands[1:] {
		best = o.cheaper(best, o.stepEntry(c, memoEntry{}, memoEntry{}, sels))
	}
	return best
}

// considerJoins evaluates every physical join candidate of the split and
// updates best in place. Candidates are priced node-free (PriceSpec) and
// materialized only when they win, so losing candidates cost zero
// allocations; candidate nodes reference the split's shared predicate
// slices.
func (o *Optimizer) considerJoins(best *memoEntry, left, right memoEntry, sp *split, sels cost.Selectivities) {
	if sp.anti != nil {
		o.consider(best, cost.OpSpec{
			Op: plan.OpAntiJoin, Relation: sp.anti.rel, IndexColumn: sp.anti.col, Preds: sp.anti.preds,
		}, left, memoEntry{}, sels)
		return
	}

	o.consider(best, cost.OpSpec{Op: plan.OpHashJoin, Preds: sp.preds}, left, right, sels)
	o.consider(best, cost.OpSpec{Op: plan.OpMergeJoin, Preds: sp.preds}, left, right, sels)

	for ci := range sp.nl {
		c := &sp.nl[ci]
		o.consider(best, cost.OpSpec{
			Op: plan.OpIndexNLJoin, Relation: c.rel, IndexColumn: c.col, Preds: c.preds,
		}, left, memoEntry{}, sels)
	}
}

// consider folds one candidate into best, replicating cheaper()'s total
// order exactly: a strictly cheaper candidate wins, a strictly costlier
// one loses, and an exact cost tie (including NaN, which compares neither
// way) falls back to the fingerprint order — the only case that has to
// materialize a losing candidate. Under a perturbed coster the node-free
// fast path is unsound (perturbation keys on node fingerprints), so every
// candidate is materialized and priced with PriceStep instead.
func (o *Optimizer) consider(best *memoEntry, spec cost.OpSpec, left, right memoEntry, sels cost.Selectivities) {
	if !o.specPrice {
		*best = o.cheaper(*best, o.stepEntry(o.materialize(spec, left, right), left, right, sels))
		return
	}
	sum := o.coster.PriceSpec(spec, left.sum, right.sum, sels)
	switch {
	case best.node == nil, sum.Cost < best.sum.Cost:
		*best = memoEntry{node: o.materialize(spec, left, right), sum: sum}
	case sum.Cost > best.sum.Cost:
		// keep best
	default:
		if n := o.materialize(spec, left, right); n.Fingerprint() < best.node.Fingerprint() {
			*best = memoEntry{node: n, sum: sum}
		}
	}
}

// materialize builds the plan node for a candidate spec over the halves'
// winning subplans.
func (o *Optimizer) materialize(spec cost.OpSpec, left, right memoEntry) *plan.Node {
	return &plan.Node{
		Op: spec.Op, Relation: spec.Relation, IndexColumn: spec.IndexColumn,
		Preds: spec.Preds, Left: left.node, Right: right.node,
	}
}

// stepEntry prices a candidate operator from its children's memoized
// summaries — the O(1) costing step that replaces whole-subtree re-costing.
func (o *Optimizer) stepEntry(n *plan.Node, left, right memoEntry, sels cost.Selectivities) memoEntry {
	return memoEntry{node: n, sum: o.coster.PriceStep(n, left.sum, right.sum, sels)}
}

// cheaper returns the lower-cost entry, breaking exact ties by fingerprint
// so optimization is deterministic.
func (o *Optimizer) cheaper(a, b memoEntry) memoEntry {
	switch {
	case b.node == nil:
		return a
	case a.node == nil:
		return b
	case b.sum.Cost < a.sum.Cost:
		return b
	case b.sum.Cost > a.sum.Cost:
		return a
	case b.node.Fingerprint() < a.node.Fingerprint():
		return b
	default:
		return a
	}
}

// joinPredsBetween returns the join (and anti-join) predicate IDs
// connecting the two relation masks. Skeleton construction only; Optimize
// reads the precomputed per-split slices.
func (o *Optimizer) joinPredsBetween(left, right uint64) []int {
	var out []int
	for _, p := range o.q.Predicates() {
		if p.Kind == query.Selection {
			continue
		}
		l := uint64(1) << uint(o.relBit[p.Left.Relation])
		r := uint64(1) << uint(o.relBit[p.Right.Relation])
		if (left&l != 0 && right&r != 0) || (left&r != 0 && right&l != 0) {
			out = append(out, p.ID)
		}
	}
	return out
}

// connectedMask reports whether the relations in m form a connected
// subgraph of the join graph. Skeleton construction only.
func (o *Optimizer) connectedMask(m uint64) bool {
	if m == 0 {
		return false
	}
	start := uint64(1) << uint(bits.TrailingZeros64(m))
	seen := start
	frontier := start
	for frontier != 0 {
		next := uint64(0)
		f := frontier
		for f != 0 {
			i := bits.TrailingZeros64(f)
			f &^= 1 << uint(i)
			next |= o.adj[i] & m &^ seen
		}
		seen |= next
		frontier = next
	}
	return seen == m
}

// AbstractCost prices an arbitrary (externally supplied) plan at the given
// selectivities: the paper's "abstract plan costing" capability (§5.4),
// used to re-cost bouquet plans at every ESS location.
func (o *Optimizer) AbstractCost(p *plan.Node, sels cost.Selectivities) cost.Cost {
	return o.coster.Cost(p, sels)
}
