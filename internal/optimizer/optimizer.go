// Package optimizer implements a System-R style cost-based query optimizer:
// dynamic programming over connected relation subsets, with access-path and
// physical-join-operator selection driven by the cost model.
//
// Its defining capability for the bouquet technique is selectivity
// injection (§4.2): Optimize takes an explicit selectivity assignment and
// returns the plan that is optimal *at that assignment*. Repeated calls
// across the ESS grid produce the parametric optimal set of plans (POSP).
//
// The optimizer deliberately mirrors a conventional engine: it picks the
// single cheapest plan per subset and breaks ties deterministically, so the
// same inputs always yield the same plan (a prerequisite for the paper's
// repeatability claim).
package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
)

// totalCalls accumulates Optimize invocations across every Optimizer
// instance in the process. Servers export it as operational telemetry
// (compile-time overhead is the paper's §6.1 cost axis); per-instance
// counts remain available via Calls.
var totalCalls atomic.Int64

// TotalCalls returns the process-wide number of Optimize invocations,
// summed over all Optimizer instances ever constructed. It is monotone
// (never reset by ResetCalls) and safe for concurrent use.
func TotalCalls() int64 { return totalCalls.Load() }

// Optimizer enumerates plans for one query under one Coster. It is safe
// for concurrent use; per-call state lives on the stack.
type Optimizer struct {
	q      *query.Query
	coster *cost.Coster

	rels    []string       // relation names, index = bit position
	relBit  map[string]int // name -> bit position
	adj     []uint64       // adjacency bitmask per relation
	selPred [][]int        // selection predicate IDs per relation

	calls atomic.Int64
}

// New builds an optimizer for coster's query. It panics if the query has
// more than 64 relations (bitmask representation).
func New(coster *cost.Coster) *Optimizer {
	q := coster.Query()
	rels := q.Relations()
	if len(rels) > 64 {
		panic("optimizer: too many relations")
	}
	o := &Optimizer{
		q:       q,
		coster:  coster,
		rels:    rels,
		relBit:  make(map[string]int, len(rels)),
		adj:     make([]uint64, len(rels)),
		selPred: make([][]int, len(rels)),
	}
	for i, r := range rels {
		o.relBit[r] = i
	}
	for _, p := range q.Predicates() {
		switch p.Kind {
		case query.Selection:
			i := o.relBit[p.Left.Relation]
			o.selPred[i] = append(o.selPred[i], p.ID)
		case query.Join, query.AntiJoin:
			l := o.relBit[p.Left.Relation]
			r := o.relBit[p.Right.Relation]
			o.adj[l] |= 1 << uint(r)
			o.adj[r] |= 1 << uint(l)
		}
	}
	return o
}

// Query returns the optimizer's query.
func (o *Optimizer) Query() *query.Query { return o.q }

// Coster returns the cost model binding.
func (o *Optimizer) Coster() *cost.Coster { return o.coster }

// Calls returns the number of Optimize invocations so far; the POSP
// generators use it to report compile-time overheads (§6.1).
func (o *Optimizer) Calls() int64 { return o.calls.Load() }

// ResetCalls zeroes the invocation counter.
func (o *Optimizer) ResetCalls() { o.calls.Store(0) }

// Result is an optimization outcome: the chosen plan and its cost at the
// injected selectivities.
type Result struct {
	// Plan is the cheapest plan found.
	Plan *plan.Node
	// Cost is Plan's total cost at the injected selectivities.
	Cost cost.Cost
}

type memoEntry struct {
	node *plan.Node
	cost cost.Cost
	rows cost.Card
	wide float64
}

// Optimize returns the optimal plan and cost at the injected selectivity
// assignment. sels must cover every predicate ID of the query. Panics on
// an under-length assignment or a query with no feasible plan (both are
// programming errors in the workload definition).
func (o *Optimizer) Optimize(sels cost.Selectivities) Result {
	o.calls.Add(1)
	totalCalls.Add(1)
	if len(sels) < o.q.NumPredicates() {
		panic(fmt.Sprintf("optimizer: selectivity assignment has %d entries, query has %d predicates",
			len(sels), o.q.NumPredicates()))
	}
	n := len(o.rels)
	full := uint64(1)<<uint(n) - 1
	memo := make([]memoEntry, full+1)

	// Base case: single relations — access path selection.
	for i := 0; i < n; i++ {
		memo[1<<uint(i)] = o.bestAccessPath(i, sels)
	}

	// Inductive case: subsets in increasing popcount order. Iterating
	// masks in increasing numeric order suffices: every proper submask
	// of m is numerically smaller than m.
	for m := uint64(1); m <= full; m++ {
		if bits.OnesCount64(m) < 2 || !o.connectedMask(m) {
			continue
		}
		best := memoEntry{cost: cost.Cost(math.Inf(1))}
		// Enumerate ordered splits (left=probe/outer, right=build/inner).
		for sub := (m - 1) & m; sub > 0; sub = (sub - 1) & m {
			left, right := sub, m&^sub
			if memo[left].node == nil || memo[right].node == nil {
				continue
			}
			preds := o.joinPredsBetween(left, right)
			if len(preds) == 0 {
				continue // would be a Cartesian product
			}
			o.considerJoins(&best, memo[left], memo[right], right, preds, sels)
		}
		memo[m] = best
	}

	final := memo[full]
	if final.node == nil {
		panic(fmt.Sprintf("optimizer: no plan for query %s", o.q.Name))
	}
	if col, ok := o.q.GroupBy(); ok {
		g := o.entryFor(plan.NewGroupAggregate(final.node, col.Relation, col.Column), sels)
		return Result{Plan: g.node, Cost: g.cost}
	}
	if o.q.Aggregate() {
		agg := o.entryFor(plan.NewAggregate(final.node), sels)
		return Result{Plan: agg.node, Cost: agg.cost}
	}
	return Result{Plan: final.node, Cost: final.cost}
}

// bestAccessPath picks the cheapest access path for relation index i:
// a sequential scan or an index scan driven by one of its selection
// predicates.
func (o *Optimizer) bestAccessPath(i int, sels cost.Selectivities) memoEntry {
	rel := o.rels[i]
	preds := o.selPred[i]

	best := o.entryFor(plan.NewSeqScan(rel, preds), sels)
	for _, id := range preds {
		col := o.q.Predicate(id).Left.Column
		if !o.q.Catalog.HasIndex(rel, col) {
			continue
		}
		cand := o.entryFor(plan.NewIndexScan(rel, col, preds), sels)
		best = o.cheaper(best, cand)
	}
	return best
}

// considerJoins evaluates every physical join of left⋈right and updates
// best in place. rightMask identifies the right side so single-relation
// inners can be turned into index nested-loops probes.
func (o *Optimizer) considerJoins(best *memoEntry, left, right memoEntry, rightMask uint64, preds []int, sels cost.Selectivities) {
	// An anti-join predicate admits exactly one shape: the inner base
	// relation alone on the right, consumed by a hash anti-join.
	for _, id := range preds {
		p := o.q.Predicate(id)
		if p.Kind != query.AntiJoin {
			continue
		}
		if len(preds) == 1 && bits.OnesCount64(rightMask) == 1 &&
			o.rels[bits.TrailingZeros64(rightMask)] == p.Right.Relation {
			anti := o.entryFor(plan.NewAntiJoin(left.node, p.Right.Relation, p.Right.Column, id), sels)
			*best = o.cheaper(*best, anti)
		}
		return // no generic join operator applies to anti predicates
	}

	hj := o.entryFor(plan.NewHashJoin(left.node, right.node, preds), sels)
	*best = o.cheaper(*best, hj)

	mj := o.entryFor(plan.NewMergeJoin(left.node, right.node, preds), sels)
	*best = o.cheaper(*best, mj)

	// Index nested loops: inner must be a single base relation with an
	// index on (one of) the join columns. The inner's selection
	// predicates fold into the join node as residual filters.
	if bits.OnesCount64(rightMask) == 1 {
		ri := bits.TrailingZeros64(rightMask)
		innerRel := o.rels[ri]
		for _, id := range preds {
			p := o.q.Predicate(id)
			var col string
			switch innerRel {
			case p.Left.Relation:
				col = p.Left.Column
			case p.Right.Relation:
				col = p.Right.Column
			default:
				continue
			}
			if !o.q.Catalog.HasIndex(innerRel, col) {
				continue
			}
			all := append(append([]int{}, preds...), o.selPred[ri]...)
			nl := o.entryFor(plan.NewIndexNLJoin(left.node, innerRel, col, all), sels)
			*best = o.cheaper(*best, nl)
		}
	}
}

// entryFor prices a candidate plan.
func (o *Optimizer) entryFor(n *plan.Node, sels cost.Selectivities) memoEntry {
	nc := o.coster.Detail(n, sels)
	root := nc[len(nc)-1]
	return memoEntry{node: n, cost: root.TotalCost, rows: root.Rows, wide: root.Width}
}

// cheaper returns the lower-cost entry, breaking exact ties by fingerprint
// so optimization is deterministic.
func (o *Optimizer) cheaper(a, b memoEntry) memoEntry {
	switch {
	case b.node == nil:
		return a
	case a.node == nil:
		return b
	case b.cost < a.cost:
		return b
	case b.cost > a.cost:
		return a
	case b.node.Fingerprint() < a.node.Fingerprint():
		return b
	default:
		return a
	}
}

// joinPredsBetween returns the join (and anti-join) predicate IDs
// connecting the two relation masks.
func (o *Optimizer) joinPredsBetween(left, right uint64) []int {
	var out []int
	for _, p := range o.q.Predicates() {
		if p.Kind == query.Selection {
			continue
		}
		l := uint64(1) << uint(o.relBit[p.Left.Relation])
		r := uint64(1) << uint(o.relBit[p.Right.Relation])
		if (left&l != 0 && right&r != 0) || (left&r != 0 && right&l != 0) {
			out = append(out, p.ID)
		}
	}
	return out
}

// connectedMask reports whether the relations in m form a connected
// subgraph of the join graph.
func (o *Optimizer) connectedMask(m uint64) bool {
	if m == 0 {
		return false
	}
	start := uint64(1) << uint(bits.TrailingZeros64(m))
	seen := start
	frontier := start
	for frontier != 0 {
		next := uint64(0)
		f := frontier
		for f != 0 {
			i := bits.TrailingZeros64(f)
			f &^= 1 << uint(i)
			next |= o.adj[i] & m &^ seen
		}
		seen |= next
		frontier = next
	}
	return seen == m
}

// AbstractCost prices an arbitrary (externally supplied) plan at the given
// selectivities: the paper's "abstract plan costing" capability (§5.4),
// used to re-cost bouquet plans at every ESS location.
func (o *Optimizer) AbstractCost(p *plan.Node, sels cost.Selectivities) cost.Cost {
	return o.coster.Cost(p, sels)
}
