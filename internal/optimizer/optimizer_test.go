package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
)

func chainQuery(t testing.TB, dims int) *query.Query {
	t.Helper()
	cat := catalog.TPCHLike(0.01)
	b := query.NewBuilder("optq", cat).
		Relation("part").Relation("lineitem").Relation("orders")
	b.SelectionPred("part", "p_retailprice", 0.1, dims >= 1)
	b.JoinPred("part", "p_partkey", "lineitem", "l_partkey", query.PKFKSel(cat, "part"), dims >= 2)
	b.JoinPred("lineitem", "l_orderkey", "orders", "o_orderkey", query.PKFKSel(cat, "orders"), dims >= 3)
	return b.MustBuild()
}

func newOpt(t testing.TB, q *query.Query) *Optimizer {
	t.Helper()
	return New(cost.NewCoster(q, cost.Postgres()))
}

func TestOptimizeReturnsValidPlan(t *testing.T) {
	q := chainQuery(t, 3)
	opt := newOpt(t, q)
	res := opt.Optimize(cost.DefaultSels(q))
	if res.Plan == nil || !(res.Cost > 0) {
		t.Fatalf("bad result %+v", res)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// The plan must apply every predicate exactly once and cover every
	// relation.
	preds := res.Plan.AllPreds()
	if len(preds) != q.NumPredicates() {
		t.Fatalf("plan applies %d of %d predicates", len(preds), q.NumPredicates())
	}
	rels := res.Plan.Relations()
	for _, r := range q.Relations() {
		if !rels[r] {
			t.Fatalf("plan misses relation %s", r)
		}
	}
}

func TestOptimizeCostMatchesAbstractCost(t *testing.T) {
	q := chainQuery(t, 3)
	opt := newOpt(t, q)
	sels := cost.Selectivities{0.05, 2e-4, 1e-5}
	res := opt.Optimize(sels)
	if got := opt.AbstractCost(res.Plan, sels); math.Abs((got - res.Cost).F()) > 1e-9*res.Cost.F() {
		t.Fatalf("AbstractCost %g != Optimize cost %g", got, res.Cost)
	}
}

// bruteForcePlans enumerates every left-deep and bushy plan over the
// 3-relation chain with every operator combination, as an independent
// optimality oracle.
func bruteForcePlans(q *query.Query) []*plan.Node {
	accessPart := []*plan.Node{
		plan.NewSeqScan("part", []int{0}),
		plan.NewIndexScan("part", "p_retailprice", []int{0}),
	}
	scanL := plan.NewSeqScan("lineitem", nil)
	scanO := plan.NewSeqScan("orders", nil)

	joins2 := func(l, r *plan.Node, pred int, innerRel, innerCol string, innerPreds []int) []*plan.Node {
		out := []*plan.Node{
			plan.NewHashJoin(l, r, []int{pred}),
			plan.NewHashJoin(r, l, []int{pred}),
			plan.NewMergeJoin(l, r, []int{pred}),
		}
		if innerRel != "" {
			out = append(out, plan.NewIndexNLJoin(l, innerRel, innerCol, append([]int{pred}, innerPreds...)))
		}
		return out
	}

	var all []*plan.Node
	// Shape 1: (part ⋈ lineitem) ⋈ orders.
	for _, ap := range accessPart {
		var pl []*plan.Node
		pl = append(pl, joins2(ap, scanL, 1, "lineitem", "l_partkey", nil)...)
		pl = append(pl, joins2(scanL, ap, 1, "", "", nil)...)
		// part as NL inner folds its selection into the join.
		pl = append(pl, plan.NewIndexNLJoin(scanL, "part", "p_partkey", []int{0, 1}))
		for _, sub := range pl {
			if len(sub.Relations()) != 2 || len(sub.AllPreds()) != 2 {
				continue // skipped fold variants that dropped pred 0
			}
			all = append(all, joins2(sub, scanO, 2, "orders", "o_orderkey", nil)...)
			all = append(all, joins2(scanO, sub, 2, "", "", nil)...)
		}
	}
	// Shape 2: part ⋈ (lineitem ⋈ orders).
	for _, lo := range joins2(scanL, scanO, 2, "orders", "o_orderkey", nil) {
		for _, ap := range accessPart {
			all = append(all, joins2(lo, ap, 1, "", "", nil)...)
			all = append(all, joins2(ap, lo, 1, "", "", nil)...)
		}
		all = append(all, plan.NewIndexNLJoin(lo, "part", "p_partkey", []int{0, 1}))
	}

	var valid []*plan.Node
	for _, p := range all {
		if p.Validate() == nil && len(p.AllPreds()) == 3 {
			valid = append(valid, p)
		}
	}
	return valid
}

// TestOptimalityAgainstBruteForce cross-checks the DP against exhaustive
// enumeration at random selectivity points: no enumerated plan may be
// cheaper than the optimizer's choice.
func TestOptimalityAgainstBruteForce(t *testing.T) {
	q := chainQuery(t, 3)
	opt := newOpt(t, q)
	coster := opt.Coster()
	plans := bruteForcePlans(q)
	if len(plans) < 20 {
		t.Fatalf("brute force enumerated only %d plans", len(plans))
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		sels := cost.Selectivities{
			cost.Sel(math.Pow(10, -4*rng.Float64())),        // selection in [1e-4, 1]
			cost.Sel(math.Pow(10, -3*rng.Float64()) * 5e-4), // joins under max legal
			cost.Sel(math.Pow(10, -3*rng.Float64()) * 6.6e-5),
		}
		res := opt.Optimize(sels)
		for _, p := range plans {
			if c := coster.Cost(p, sels); c < res.Cost*(1-1e-9) {
				t.Fatalf("trial %d: enumerated plan %s costs %g < optimizer's %g (%s)",
					trial, p, c, res.Cost, res.Plan)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	q := chainQuery(t, 3)
	sels := cost.Selectivities{0.1, 1e-4, 1e-5}
	a := newOpt(t, q).Optimize(sels)
	b := newOpt(t, q).Optimize(sels)
	if a.Plan.Fingerprint() != b.Plan.Fingerprint() || a.Cost != b.Cost {
		t.Fatal("optimization is not deterministic")
	}
}

func TestPlanChangesWithSelectivity(t *testing.T) {
	// The POSP property: different points get different optimal plans.
	q := chainQuery(t, 3)
	opt := newOpt(t, q)
	lo := opt.Optimize(cost.Selectivities{1e-4, 5e-7, 7e-8})
	hi := opt.Optimize(cost.Selectivities{1.0, 5e-4, 6.6e-5})
	if lo.Plan.Fingerprint() == hi.Plan.Fingerprint() {
		t.Fatal("optimal plan identical at opposite space corners — POSP degenerate")
	}
	if !(hi.Cost > lo.Cost) {
		t.Fatal("corner costs must increase with selectivity (PCM)")
	}
}

func TestCallsCounter(t *testing.T) {
	q := chainQuery(t, 1)
	opt := newOpt(t, q)
	sels := cost.DefaultSels(q)
	for i := 0; i < 5; i++ {
		opt.Optimize(sels)
	}
	if got := opt.Calls(); got != 5 {
		t.Fatalf("Calls = %d, want 5", got)
	}
	opt.ResetCalls()
	if opt.Calls() != 0 {
		t.Fatal("ResetCalls failed")
	}
}

func TestShortSelsPanics(t *testing.T) {
	q := chainQuery(t, 1)
	opt := newOpt(t, q)
	defer func() {
		if recover() == nil {
			t.Fatal("short selectivity slice should panic")
		}
	}()
	opt.Optimize(cost.Selectivities{0.1})
}

func TestSingleRelationQuery(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q := query.NewBuilder("single", cat).
		Relation("part").
		SelectionPred("part", "p_retailprice", 0.1, true).
		MustBuild()
	opt := newOpt(t, q)
	// Low selectivity: index scan; high: seq scan.
	lo := opt.Optimize(cost.Selectivities{1e-4})
	if lo.Plan.Op != plan.OpIndexScan {
		t.Errorf("low selectivity plan = %s, want index scan", lo.Plan)
	}
	hi := opt.Optimize(cost.Selectivities{0.9})
	if hi.Plan.Op != plan.OpSeqScan {
		t.Errorf("high selectivity plan = %s, want seq scan", hi.Plan)
	}
}

func TestStarQueryUsesAllJoins(t *testing.T) {
	cat := catalog.TPCDSLike(0.01)
	q := query.NewBuilder("star", cat).
		Relation("store_sales").Relation("date_dim").Relation("item").Relation("store").
		JoinPred("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk", query.PKFKSel(cat, "date_dim"), true).
		JoinPred("store_sales", "ss_item_sk", "item", "i_item_sk", query.PKFKSel(cat, "item"), true).
		JoinPred("store_sales", "ss_store_sk", "store", "s_store_sk", query.PKFKSel(cat, "store"), true).
		MustBuild()
	opt := newOpt(t, q)
	res := opt.Optimize(cost.DefaultSels(q))
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(res.Plan.AllPreds()); got != 3 {
		t.Fatalf("star plan applies %d preds", got)
	}
}

func TestCyclicQueryAppliesAllPredicates(t *testing.T) {
	// A cycle: the extra closing predicate must be applied exactly once.
	cat := catalog.TPCHLike(0.01)
	q := query.NewBuilder("cyc", cat).
		Relation("part").Relation("lineitem").Relation("orders").
		JoinPred("part", "p_partkey", "lineitem", "l_partkey", query.PKFKSel(cat, "part"), false).
		JoinPred("lineitem", "l_orderkey", "orders", "o_orderkey", query.PKFKSel(cat, "orders"), false).
		JoinPred("part", "p_size", "orders", "o_orderdate", 1e-3, true).
		MustBuild()
	opt := newOpt(t, q)
	res := opt.Optimize(cost.DefaultSels(q))
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(res.Plan.AllPreds()); got != 3 {
		t.Fatalf("cyclic plan applies %d preds, want 3", got)
	}
}

func TestOptimizerConcurrentUse(t *testing.T) {
	q := chainQuery(t, 3)
	opt := newOpt(t, q)
	ref := opt.Optimize(cost.DefaultSels(q))
	done := make(chan string, 8)
	for w := 0; w < 8; w++ {
		go func() {
			r := opt.Optimize(cost.DefaultSels(q))
			done <- r.Plan.Fingerprint()
		}()
	}
	for w := 0; w < 8; w++ {
		if fp := <-done; fp != ref.Plan.Fingerprint() {
			t.Fatal("concurrent optimizations diverged")
		}
	}
}

func TestAggregateQueryPlans(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q := query.NewBuilder("aggq", cat).
		Relation("part").Relation("lineitem").
		SelectionPred("part", "p_retailprice", 0.1, true).
		JoinPred("part", "p_partkey", "lineitem", "l_partkey", query.PKFKSel(cat, "part"), false).
		Aggregate().
		MustBuild()
	opt := newOpt(t, q)
	res := opt.Optimize(cost.DefaultSels(q))
	if res.Plan.Op != plan.OpAggregate {
		t.Fatalf("aggregate query rooted at %v", res.Plan.Op)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cost exceeds the child's (the aggregate adds work).
	child := opt.AbstractCost(res.Plan.Left, cost.DefaultSels(q))
	if !(res.Cost > child) {
		t.Fatalf("aggregate cost %g not above child %g", res.Cost, child)
	}
}

func BenchmarkOptimizeChain3(b *testing.B) {
	q := chainQuery(b, 3)
	opt := newOpt(b, q)
	sels := cost.DefaultSels(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Optimize(sels)
	}
}

func BenchmarkOptimizeBranch8(b *testing.B) {
	cat := catalog.TPCHLike(1.0)
	q := query.NewBuilder("bench8", cat).
		Relation("part").Relation("partsupp").Relation("lineitem").
		Relation("supplier").Relation("orders").Relation("customer").
		Relation("nation").Relation("region").
		JoinPred("part", "p_partkey", "partsupp", "ps_partkey", query.PKFKSel(cat, "part"), false).
		JoinPred("part", "p_partkey", "lineitem", "l_partkey", query.PKFKSel(cat, "part"), true).
		JoinPred("lineitem", "l_suppkey", "supplier", "s_suppkey", query.PKFKSel(cat, "supplier"), true).
		JoinPred("lineitem", "l_orderkey", "orders", "o_orderkey", query.PKFKSel(cat, "orders"), true).
		JoinPred("orders", "o_custkey", "customer", "c_custkey", query.PKFKSel(cat, "customer"), true).
		JoinPred("customer", "c_nationkey", "nation", "n_nationkey", query.PKFKSel(cat, "nation"), false).
		JoinPred("nation", "n_regionkey", "region", "r_regionkey", query.PKFKSel(cat, "region"), false).
		MustBuild()
	opt := newOpt(b, q)
	sels := cost.DefaultSels(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Optimize(sels)
	}
}

func BenchmarkAbstractCost(b *testing.B) {
	q := chainQuery(b, 3)
	opt := newOpt(b, q)
	sels := cost.DefaultSels(q)
	p := opt.Optimize(sels).Plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.AbstractCost(p, sels)
	}
}

func TestGroupByQueryPlans(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	q := query.NewBuilder("gq", cat).
		Relation("part").Relation("lineitem").
		SelectionPred("part", "p_retailprice", 0.1, true).
		JoinPred("part", "p_partkey", "lineitem", "l_partkey", query.PKFKSel(cat, "part"), false).
		GroupByCol("part", "p_brand").
		MustBuild()
	opt := newOpt(t, q)
	res := opt.Optimize(cost.DefaultSels(q))
	if res.Plan.Op != plan.OpGroupAggregate {
		t.Fatalf("group-by query rooted at %v", res.Plan.Op)
	}
	if res.Plan.Relation != "part" || res.Plan.IndexColumn != "p_brand" {
		t.Fatalf("grouping column lost: %s", res.Plan)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
}
