package data

import (
	"math"
	"testing"

	"repro/internal/catalog"
)

func smallCatalog() *catalog.Catalog {
	c := catalog.NewCatalog()
	c.AddRelation(&catalog.Relation{
		Name: "pk", Card: 200, TupleWidth: 16,
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.TypeKey, DistinctCount: 200},
			{Name: "v", Type: catalog.TypeInt, DistinctCount: 50},
		},
	})
	c.AddRelation(&catalog.Relation{
		Name: "fk", Card: 2000, TupleWidth: 24,
		Columns: []catalog.Column{
			{Name: "ref", Type: catalog.TypeForeignKey, Refs: "pk", DistinctCount: 200},
			{Name: "w", Type: catalog.TypeInt, DistinctCount: 100},
		},
	})
	c.IndexAllColumns()
	return c
}

func TestGenerateCardinalities(t *testing.T) {
	db := Generate(smallCatalog(), nil, nil, 1)
	if db.Table("pk").NumRows() != 200 || db.Table("fk").NumRows() != 2000 {
		t.Fatal("row counts do not match catalog cards")
	}
}

func TestKeyColumnsDense(t *testing.T) {
	db := Generate(smallCatalog(), nil, nil, 1)
	vals := db.Table("pk").Column("id")
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("key column not dense at %d: %d", i, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(smallCatalog(), nil, nil, 9)
	b := Generate(smallCatalog(), nil, nil, 9)
	for _, tbl := range []string{"pk", "fk"} {
		for _, col := range []string{"v", "w"} {
			ta, tb := a.Table(tbl), b.Table(tbl)
			if ta.ColIndex(col) < 0 {
				continue
			}
			ca, cb := ta.Column(col), tb.Column(col)
			for i := range ca {
				if ca[i] != cb[i] {
					t.Fatalf("%s.%s differs at row %d with same seed", tbl, col, i)
				}
			}
		}
	}
	c := Generate(smallCatalog(), nil, nil, 10)
	same := true
	ca, cc := a.Table("fk").Column("w"), c.Table("fk").Column("w")
	for i := range ca {
		if ca[i] != cc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestPerRelationSeedStability(t *testing.T) {
	// Generating a subset must not reshuffle the shared relations.
	all := Generate(smallCatalog(), nil, nil, 3)
	sub := Generate(smallCatalog(), []string{"fk"}, nil, 3)
	a, b := all.Table("fk").Column("w"), sub.Table("fk").Column("w")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("relation data depends on which other relations are generated")
		}
	}
}

func TestMatchFracRealization(t *testing.T) {
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		db := Generate(smallCatalog(), nil, map[string]Spec{
			"fk": {MatchFrac: map[string]float64{"ref": frac}},
		}, 7)
		sel := db.JoinSelectivity("pk", "id", "fk", "ref")
		// Expected selectivity: frac / |pk|.
		want := frac / 200
		if math.Abs(sel-want) > 0.15*want {
			t.Errorf("frac %g: realized sel %g, want ≈ %g", frac, sel, want)
		}
		// Dangling rows use -1, which matches nothing.
		for _, v := range db.Table("fk").Column("ref") {
			if v != -1 && (v < 0 || v >= 200) {
				t.Fatalf("FK value %d outside key domain", v)
			}
		}
	}
}

func TestFullMatchFrac(t *testing.T) {
	db := Generate(smallCatalog(), nil, nil, 2)
	sel := db.JoinSelectivity("pk", "id", "fk", "ref")
	if math.Abs(sel-1.0/200) > 1e-12 {
		t.Fatalf("clean PK-FK selectivity %g, want exactly 1/200", sel)
	}
}

func TestJoinSelectivityMatchesBruteForce(t *testing.T) {
	db := Generate(smallCatalog(), nil, map[string]Spec{
		"fk": {MatchFrac: map[string]float64{"ref": 0.4}},
	}, 11)
	pk, fk := db.Table("pk"), db.Table("fk")
	var matches int64
	for i := 0; i < pk.NumRows(); i++ {
		for j := 0; j < fk.NumRows(); j++ {
			if pk.Value(i, "id") == fk.Value(j, "ref") {
				matches++
			}
		}
	}
	want := float64(matches) / (200.0 * 2000.0)
	if got := db.JoinSelectivity("pk", "id", "fk", "ref"); math.Abs(got-want) > 1e-15 {
		t.Fatalf("JoinSelectivity = %g, brute force = %g", got, want)
	}
	// Symmetric in argument order.
	if got := db.JoinSelectivity("fk", "ref", "pk", "id"); math.Abs(got-want) > 1e-15 {
		t.Fatalf("JoinSelectivity not symmetric")
	}
}

func TestSelectionBound(t *testing.T) {
	db := Generate(smallCatalog(), nil, nil, 13)
	bound, realized := db.SelectionBound("fk", "w", 0.3)
	if bound <= 0 {
		t.Fatalf("bound = %d", bound)
	}
	if math.Abs(realized-0.3) > 0.1 {
		t.Errorf("realized %g far from target 0.3", realized)
	}
	// Realized matches an independent count.
	var n int64
	for _, v := range db.Table("fk").Column("w") {
		if v < bound {
			n++
		}
	}
	if want := float64(n) / 2000; realized != want {
		t.Fatalf("realized %g != recount %g", realized, want)
	}
	// Tiny targets clamp to bound 1.
	b2, r2 := db.SelectionBound("fk", "w", 1e-9)
	if b2 != 1 || r2 < 0 {
		t.Fatalf("tiny target: bound %d realized %g", b2, r2)
	}
}

func TestSortedBy(t *testing.T) {
	db := Generate(smallCatalog(), nil, nil, 17)
	tbl := db.Table("fk")
	order := tbl.SortedBy("w")
	if len(order) != tbl.NumRows() {
		t.Fatal("order length mismatch")
	}
	vals := tbl.Column("w")
	for i := 1; i < len(order); i++ {
		if vals[order[i-1]] > vals[order[i]] {
			t.Fatal("SortedBy not ascending")
		}
	}
	// Cached: same slice on second call.
	if &order[0] != &tbl.SortedBy("w")[0] {
		t.Fatal("SortedBy rebuilt instead of cached")
	}
}

func TestHashOn(t *testing.T) {
	db := Generate(smallCatalog(), nil, nil, 19)
	tbl := db.Table("fk")
	h := tbl.HashOn("ref")
	total := 0
	for v, rows := range h {
		for _, r := range rows {
			if tbl.Value(int(r), "ref") != v {
				t.Fatal("hash bucket contains wrong row")
			}
		}
		total += len(rows)
	}
	if total != tbl.NumRows() {
		t.Fatalf("hash covers %d of %d rows", total, tbl.NumRows())
	}
}

func TestCountLess(t *testing.T) {
	db := Generate(smallCatalog(), nil, nil, 23)
	tbl := db.Table("pk")
	if got := tbl.CountLess("id", 50); got != 50 {
		t.Fatalf("CountLess(id, 50) = %d on dense keys", got)
	}
	if got := tbl.CountLess("id", 0); got != 0 {
		t.Fatalf("CountLess(id, 0) = %d", got)
	}
}

func TestUnknownLookupsPanic(t *testing.T) {
	db := Generate(smallCatalog(), nil, nil, 1)
	for _, f := range []func(){
		func() { db.Table("ghost") },
		func() { db.Table("pk").Column("ghost") },
		func() { db.Table("pk").Value(0, "ghost") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if db.Table("pk").ColIndex("ghost") != -1 {
		t.Error("ColIndex of missing column should be -1")
	}
}

func TestDomainOverride(t *testing.T) {
	db := Generate(smallCatalog(), nil, map[string]Spec{
		"fk": {Domain: map[string]int64{"w": 5}},
	}, 29)
	for _, v := range db.Table("fk").Column("w") {
		if v < 0 || v >= 5 {
			t.Fatalf("value %d outside overridden domain [0,5)", v)
		}
	}
}

func TestSkewedGeneration(t *testing.T) {
	db := Generate(smallCatalog(), nil, map[string]Spec{
		"fk": {Skew: map[string]float64{"w": 1.5}},
	}, 43)
	vals := db.Table("fk").Column("w")
	// Under Zipf skew, value 0 dominates; under uniform it holds ~1% of
	// rows (domain 100).
	var zeros int
	for _, v := range vals {
		if v < 0 || v >= 100 {
			t.Fatalf("skewed value %d outside domain", v)
		}
		if v == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / float64(len(vals)); frac < 0.10 {
		t.Errorf("zipf head frequency %.3f, expected heavy skew", frac)
	}
}

func TestSkewedFKStillJoins(t *testing.T) {
	// A skewed FK column still realises a measurable join selectivity,
	// now concentrated on hot keys.
	db := Generate(smallCatalog(), nil, map[string]Spec{
		"fk": {Skew: map[string]float64{"ref": 2.0}},
	}, 47)
	sel := db.JoinSelectivity("pk", "id", "fk", "ref")
	if sel <= 0 {
		t.Fatal("skewed FK join has zero selectivity")
	}
	// Hot key 0 should carry far more than the uniform share.
	h := db.Table("fk").HashOn("ref")
	if len(h[0]) < 10*len(h[150])+1 {
		t.Errorf("no hot-key clustering: key0=%d key150=%d", len(h[0]), len(h[150]))
	}
}

func BenchmarkGenerate(b *testing.B) {
	cat := smallCatalog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cat, nil, nil, int64(i))
	}
}

func BenchmarkJoinSelectivity(b *testing.B) {
	db := Generate(smallCatalog(), nil, nil, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.JoinSelectivity("pk", "id", "fk", "ref")
	}
}
