// Package data generates deterministic synthetic row data for the run-time
// experiments: tables whose join and selection selectivities are
// *controlled* at generation time, so the actual query location q_a is a
// known quantity the bouquet run-time must discover.
//
// All generation is seeded and order-stable: the same catalog + spec + seed
// always produce byte-identical tables, underpinning the paper's
// repeatable-execution claim (tested in internal/core).
package data

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/catalog"
)

// Spec tunes the generated value distributions of one relation.
type Spec struct {
	// MatchFrac, per foreign-key column, is the fraction of rows whose
	// FK value references an existing key; the rest dangle (value -1,
	// matching nothing). For a PK-FK join this makes the realized join
	// selectivity MatchFrac/|PK| instead of the clean 1/|PK|, which is
	// how run-time workloads position q_a inside a join dimension.
	MatchFrac map[string]float64
	// Domain, per column, overrides the value domain size (defaults to
	// the column's DistinctCount). Plain-int columns draw uniformly
	// from [0, domain).
	Domain map[string]int64
	// Skew, per column, draws values Zipf-distributed with the given
	// exponent s > 1 instead of uniformly (value 0 most frequent).
	// Applies to plain-int and foreign-key columns; skewed FKs model
	// the hot-key clustering real fact tables exhibit.
	Skew map[string]float64
}

// Table is a columnar table with lazily built secondary structures.
type Table struct {
	// Rel is the catalog relation this table instantiates.
	Rel *catalog.Relation

	colIdx map[string]int
	cols   [][]int64
	n      int

	sorted map[string][]int32           // row ids ordered by column value
	hashed map[string]map[int64][]int32 // value -> row ids
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.n }

// ColIndex returns the positional index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Value returns the value of column col at row r. Panics on an unknown
// column.
func (t *Table) Value(r int, col string) int64 {
	i, ok := t.colIdx[col]
	if !ok {
		panic(fmt.Sprintf("data: table %s has no column %s", t.Rel.Name, col))
	}
	return t.cols[i][r]
}

// Column returns the full column vector (shared; do not mutate). Panics
// on an unknown column.
func (t *Table) Column(col string) []int64 {
	i, ok := t.colIdx[col]
	if !ok {
		panic(fmt.Sprintf("data: table %s has no column %s", t.Rel.Name, col))
	}
	return t.cols[i]
}

// SortedBy returns row ids ordered ascending by the column's value,
// building the structure on first use. This is the table's "index" for
// range scans.
func (t *Table) SortedBy(col string) []int32 {
	if ids, ok := t.sorted[col]; ok {
		return ids
	}
	vals := t.Column(col)
	ids := make([]int32, t.n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.SliceStable(ids, func(a, b int) bool { return vals[ids[a]] < vals[ids[b]] })
	t.sorted[col] = ids
	return ids
}

// HashOn returns a value→rows map over the column, building it on first
// use. This is the table's "index" for equality probes.
func (t *Table) HashOn(col string) map[int64][]int32 {
	if h, ok := t.hashed[col]; ok {
		return h
	}
	vals := t.Column(col)
	h := make(map[int64][]int32, t.n)
	for i, v := range vals {
		h[v] = append(h[v], int32(i))
	}
	t.hashed[col] = h
	return h
}

// CountLess returns the number of rows with column value < bound.
func (t *Table) CountLess(col string, bound int64) int64 {
	var n int64
	for _, v := range t.Column(col) {
		if v < bound {
			n++
		}
	}
	return n
}

// Database is a set of generated tables over one catalog.
type Database struct {
	// Cat is the schema the tables instantiate.
	Cat *catalog.Catalog

	tables map[string]*Table
}

// Table returns the named table or panics.
func (db *Database) Table(name string) *Table {
	t := db.tables[name]
	if t == nil {
		panic(fmt.Sprintf("data: no table %s", name))
	}
	return t
}

// Generate materializes every relation in cat (or only rels, if non-empty)
// with rel.Card rows each, using specs to steer distributions and seed for
// determinism.
func Generate(cat *catalog.Catalog, rels []string, specs map[string]Spec, seed int64) *Database {
	db := &Database{Cat: cat, tables: make(map[string]*Table)}
	var list []*catalog.Relation
	if len(rels) == 0 {
		list = cat.Relations()
	} else {
		for _, name := range rels {
			list = append(list, cat.MustRelation(name))
		}
	}
	for _, rel := range list {
		// Per-relation seed derived stably from the global seed and
		// relation name so adding relations never reshuffles others.
		rng := rand.New(rand.NewSource(seed ^ int64(stableHash(rel.Name))))
		db.tables[rel.Name] = generateTable(rel, specs[rel.Name], rng)
	}
	return db
}

func stableHash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func generateTable(rel *catalog.Relation, spec Spec, rng *rand.Rand) *Table {
	n := int(rel.Card)
	t := &Table{
		Rel:    rel,
		colIdx: make(map[string]int, len(rel.Columns)),
		cols:   make([][]int64, len(rel.Columns)),
		n:      n,
		sorted: make(map[string][]int32),
		hashed: make(map[string]map[int64][]int32),
	}
	for ci, col := range rel.Columns {
		t.colIdx[col.Name] = ci
		vals := make([]int64, n)
		switch col.Type {
		case catalog.TypeKey:
			for i := range vals {
				vals[i] = int64(i)
			}
		case catalog.TypeForeignKey:
			// Referenced keys are dense 0..refCard-1 by the
			// TypeKey construction above, so a draw in that range
			// references a real key.
			refCard := col.DistinctCount
			if refCard < 1 {
				refCard = 1
			}
			match := 1.0
			if spec.MatchFrac != nil {
				if f, ok := spec.MatchFrac[col.Name]; ok {
					match = f
				}
			}
			draw := drawerFor(spec, col.Name, refCard, rng)
			for i := range vals {
				if match >= 1.0 || rng.Float64() < match {
					vals[i] = draw()
				} else {
					vals[i] = -1 // dangling: matches nothing
				}
			}
		case catalog.TypeInt:
			domain := col.DistinctCount
			if spec.Domain != nil {
				if d, ok := spec.Domain[col.Name]; ok {
					domain = d
				}
			}
			if domain < 1 {
				domain = 1
			}
			draw := drawerFor(spec, col.Name, domain, rng)
			for i := range vals {
				vals[i] = draw()
			}
		}
		t.cols[ci] = vals
	}
	return t
}

// drawerFor returns the value generator for a column: uniform over
// [0, domain), or Zipf-distributed when the spec assigns the column a skew
// exponent.
func drawerFor(spec Spec, col string, domain int64, rng *rand.Rand) func() int64 {
	if spec.Skew != nil {
		if s, ok := spec.Skew[col]; ok && s > 1 && domain > 1 {
			z := rand.NewZipf(rng, s, 1, uint64(domain-1))
			return func() int64 { return int64(z.Uint64()) }
		}
	}
	return func() int64 { return rng.Int63n(domain) }
}

// SelectionBound returns the predicate constant c such that "col < c" has
// selectivity as close as possible to target, along with the exactly
// realized selectivity. It assumes the column's uniform [0, domain)
// generation and then corrects against the actual data. Panics on an
// unknown relation or column.
func (db *Database) SelectionBound(relName, col string, target float64) (bound int64, realized float64) {
	t := db.Table(relName)
	c := t.Rel.Column(col)
	if c == nil {
		panic(fmt.Sprintf("data: no column %s.%s", relName, col))
	}
	domain := c.DistinctCount
	if domain < 1 {
		domain = 1
	}
	bound = int64(target * float64(domain))
	if bound < 1 {
		bound = 1
	}
	realized = float64(t.CountLess(col, bound)) / float64(t.NumRows())
	return bound, realized
}

// NegatedSelectionBound returns the constant c such that "col ≥ c" passes
// a fraction of rows as close as possible to target, with the exactly
// realized fraction. Panics on an unknown relation or column.
func (db *Database) NegatedSelectionBound(relName, col string, target float64) (bound int64, realized float64) {
	t := db.Table(relName)
	c := t.Rel.Column(col)
	if c == nil {
		panic(fmt.Sprintf("data: no column %s.%s", relName, col))
	}
	domain := c.DistinctCount
	if domain < 1 {
		domain = 1
	}
	bound = int64((1 - target) * float64(domain))
	if bound >= domain {
		bound = domain - 1
	}
	if bound < 0 {
		bound = 0
	}
	passing := int64(t.NumRows()) - t.CountLess(col, bound)
	realized = float64(passing) / float64(t.NumRows())
	return bound, realized
}

// JoinSelectivity returns the exactly realized selectivity of the equi-join
// lrel.lcol = rrel.rcol: matches / (|L|·|R|).
func (db *Database) JoinSelectivity(lrel, lcol, rrel, rcol string) float64 {
	l, r := db.Table(lrel), db.Table(rrel)
	// Count via the smaller side's hash to bound memory.
	if l.NumRows() > r.NumRows() {
		l, r = r, l
		lcol, rcol = rcol, lcol
	}
	h := l.HashOn(lcol)
	var matches int64
	for _, v := range r.Column(rcol) {
		matches += int64(len(h[v]))
	}
	return float64(matches) / (float64(l.NumRows()) * float64(r.NumRows()))
}
