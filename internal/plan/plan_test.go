package plan

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

// samplePlan builds HJ(NL(IdxScan[a]{0}, b {1}), SeqScan[c] {2}) — a
// three-relation plan applying predicates 0 (selection), 1 and 2 (joins).
func samplePlan() *Node {
	scanA := NewIndexScan("a", "a_v", []int{0})
	nl := NewIndexNLJoin(scanA, "b", "b_a", []int{1})
	scanC := NewSeqScan("c", nil)
	return NewHashJoin(nl, scanC, []int{2})
}

func TestConstructorsNormalizePreds(t *testing.T) {
	n := NewSeqScan("r", []int{3, 1, 2})
	if n.Preds[0] != 1 || n.Preds[1] != 2 || n.Preds[2] != 3 {
		t.Fatalf("preds not normalized: %v", n.Preds)
	}
	// Caller's slice is not aliased.
	in := []int{5, 4}
	m := NewSeqScan("r", in)
	in[0] = 99
	if m.Preds[0] == 99 || m.Preds[1] == 99 {
		t.Fatal("constructor aliased caller slice")
	}
}

func TestRelations(t *testing.T) {
	rels := samplePlan().Relations()
	for _, r := range []string{"a", "b", "c"} {
		if !rels[r] {
			t.Errorf("missing relation %s", r)
		}
	}
	if len(rels) != 3 {
		t.Errorf("relations = %v, want 3 entries", rels)
	}
}

func TestAllPreds(t *testing.T) {
	got := samplePlan().AllPreds()
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("AllPreds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AllPreds = %v, want %v", got, want)
		}
	}
}

func TestNumNodes(t *testing.T) {
	if got := samplePlan().NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
}

func TestPredDepth(t *testing.T) {
	p := samplePlan()
	cases := []struct {
		pred, depth int
		ok          bool
	}{
		{0, 2, true}, // selection at the deepest leaf
		{1, 1, true}, // NL join one level down
		{2, 0, true}, // root hash join
		{9, 0, false},
	}
	for _, tc := range cases {
		d, ok := p.PredDepth(tc.pred)
		if ok != tc.ok || (ok && d != tc.depth) {
			t.Errorf("PredDepth(%d) = (%d,%v), want (%d,%v)", tc.pred, d, ok, tc.depth, tc.ok)
		}
	}
}

func TestFingerprintIdentity(t *testing.T) {
	a, b := samplePlan(), samplePlan()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical plans must share a fingerprint")
	}
	// Any structural difference changes the fingerprint.
	variants := []*Node{
		NewHashJoin(NewIndexNLJoin(NewIndexScan("a", "a_v", []int{0}), "b", "b_a", []int{1}), NewSeqScan("c", []int{3}), []int{2}),
		NewMergeJoin(NewIndexNLJoin(NewIndexScan("a", "a_v", []int{0}), "b", "b_a", []int{1}), NewSeqScan("c", nil), []int{2}),
		NewHashJoin(NewSeqScan("c", nil), NewIndexNLJoin(NewIndexScan("a", "a_v", []int{0}), "b", "b_a", []int{1}), []int{2}),
	}
	for i, v := range variants {
		if v.Fingerprint() == a.Fingerprint() {
			t.Errorf("variant %d collides with base fingerprint", i)
		}
	}
}

func TestFingerprintDistinguishesIndexColumn(t *testing.T) {
	a := NewIndexScan("r", "x", []int{0})
	b := NewIndexScan("r", "y", []int{0})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("index column must be part of the fingerprint")
	}
}

func TestStringEqualsFingerprint(t *testing.T) {
	p := samplePlan()
	if p.String() != p.Fingerprint() {
		t.Fatal("String should render the fingerprint")
	}
}

func TestRender(t *testing.T) {
	out := samplePlan().Render()
	for _, want := range []string{"HJ", "NL b", "IdxScan a", "SeqScan c", "preds=[0]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	// Indentation encodes depth.
	if !strings.Contains(out, "    IdxScan") {
		t.Errorf("deepest node not indented twice:\n%s", out)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := samplePlan().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		n    *Node
		want string
	}{
		{"scan with child", &Node{Op: OpSeqScan, Relation: "r", Left: NewSeqScan("x", nil)}, "has children"},
		{"scan without relation", &Node{Op: OpSeqScan}, "without relation"},
		{"idxscan without column", &Node{Op: OpIndexScan, Relation: "r"}, "missing relation or index column"},
		{"nl without outer", &Node{Op: OpIndexNLJoin, Relation: "r", IndexColumn: "c", Preds: []int{0}}, "left (outer) child"},
		{"nl without pred", NewIndexNLJoin(NewSeqScan("x", nil), "r", "c", nil), "without join predicate"},
		{"hj one child", &Node{Op: OpHashJoin, Left: NewSeqScan("x", nil), Preds: []int{0}}, "two children"},
		{"hj no pred", NewHashJoin(NewSeqScan("x", nil), NewSeqScan("y", nil), nil), "without join predicate"},
		{"dup pred", NewHashJoin(NewSeqScan("x", []int{1}), NewSeqScan("y", nil), []int{1}), "applied twice"},
		{"unknown op", &Node{Op: Op(42)}, "unknown operator"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.n.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestOpPredicatesAndString(t *testing.T) {
	joins := []Op{OpIndexNLJoin, OpHashJoin, OpMergeJoin}
	for _, op := range joins {
		if !op.IsJoin() || op.IsScan() {
			t.Errorf("%v misclassified", op)
		}
	}
	scans := []Op{OpSeqScan, OpIndexScan}
	for _, op := range scans {
		if op.IsJoin() || !op.IsScan() {
			t.Errorf("%v misclassified", op)
		}
	}
	want := map[Op]string{OpSeqScan: "SeqScan", OpIndexScan: "IdxScan", OpIndexNLJoin: "NL", OpHashJoin: "HJ", OpMergeJoin: "MJ"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %s, want %s", int(op), op.String(), s)
		}
	}
	if !strings.Contains(Op(77).String(), "77") {
		t.Error("unknown Op should include its value")
	}
}

func TestWalkOrder(t *testing.T) {
	var ops []Op
	samplePlan().Walk(func(n *Node) { ops = append(ops, n.Op) })
	want := []Op{OpHashJoin, OpIndexNLJoin, OpIndexScan, OpSeqScan}
	if len(ops) != len(want) {
		t.Fatalf("Walk visited %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("Walk order %v, want %v (pre-order)", ops, want)
		}
	}
}

// TestFingerprintInjectiveOnRandomTrees property-checks that structurally
// different random plan trees get different fingerprints, and identical
// constructions get identical ones.
func TestFingerprintInjectiveOnRandomTrees(t *testing.T) {
	build := func(relSeed, predSeed uint8, useHJ bool) *Node {
		rels := []string{"r0", "r1", "r2", "r3"}
		left := NewSeqScan(rels[relSeed%4], []int{int(predSeed % 5)})
		right := NewSeqScan(rels[(relSeed+1)%4], nil)
		if useHJ {
			return NewHashJoin(left, right, []int{int(predSeed%5) + 5})
		}
		return NewMergeJoin(left, right, []int{int(predSeed%5) + 5})
	}
	f := func(a, b uint8, hjA, hjB bool) bool {
		pa, pb := build(a, a, hjA), build(b, b, hjB)
		same := a%4 == b%4 && a%5 == b%5 && hjA == hjB
		return (pa.Fingerprint() == pb.Fingerprint()) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := samplePlan()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Node
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != orig.Fingerprint() {
		t.Fatalf("round trip changed plan: %s -> %s", orig, &back)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var n Node
	if err := json.Unmarshal([]byte(`{"op":"FrobJoin"}`), &n); err == nil {
		t.Error("unknown operator accepted")
	}
	// Structurally invalid: a SeqScan with a child.
	bad := `{"op":"SeqScan","relation":"r","left":{"op":"SeqScan","relation":"x"}}`
	if err := json.Unmarshal([]byte(bad), &n); err == nil {
		t.Error("invalid structure accepted")
	}
}

func TestAggregateNode(t *testing.T) {
	agg := NewAggregate(samplePlan())
	if err := agg.Validate(); err != nil {
		t.Fatal(err)
	}
	if agg.Op.IsJoin() || agg.Op.IsScan() {
		t.Error("AGG misclassified")
	}
	if agg.Op.String() != "AGG" {
		t.Errorf("AGG renders as %s", agg.Op)
	}
	if err := (&Node{Op: OpAggregate}).Validate(); err == nil {
		t.Error("childless AGG accepted")
	}
	if err := (&Node{Op: OpAggregate, Left: NewSeqScan("r", nil), Preds: []int{1}}).Validate(); err == nil {
		t.Error("AGG with predicates accepted")
	}
	// JSON round trip includes the aggregate.
	data, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	var back Node
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != agg.Fingerprint() {
		t.Fatal("AGG lost in round trip")
	}
}

func TestDOT(t *testing.T) {
	out := samplePlan().DOT("sample")
	for _, want := range []string{
		"digraph \"sample\"",
		"HJ", "NL\\nb.b_a", "IdxScan\\na.a_v", "SeqScan\\nc",
		"n0 -> n1;", "preds [2]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q in:\n%s", want, out)
		}
	}
	// Edge count = node count - 1 for a tree.
	if got := strings.Count(out, "->"); got != samplePlan().NumNodes()-1 {
		t.Errorf("DOT has %d edges", got)
	}
	if !strings.HasSuffix(out, "}\n") {
		t.Error("DOT not terminated")
	}
}
