package plan

import (
	"encoding/json"
	"fmt"
)

// nodeJSON is the serialized form of a Node. Operators are stored by their
// stable string names so the format survives Op renumbering.
type nodeJSON struct {
	Op          string    `json:"op"`
	Relation    string    `json:"relation,omitempty"`
	IndexColumn string    `json:"indexColumn,omitempty"`
	Preds       []int     `json:"preds,omitempty"`
	Left        *nodeJSON `json:"left,omitempty"`
	Right       *nodeJSON `json:"right,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSON(n))
}

func toJSON(n *Node) *nodeJSON {
	if n == nil {
		return nil
	}
	return &nodeJSON{
		Op:          n.Op.String(),
		Relation:    n.Relation,
		IndexColumn: n.IndexColumn,
		Preds:       append([]int{}, n.Preds...),
		Left:        toJSON(n.Left),
		Right:       toJSON(n.Right),
	}
}

// UnmarshalJSON implements json.Unmarshaler; the decoded plan is validated
// structurally before being accepted.
func (n *Node) UnmarshalJSON(data []byte) error {
	var j nodeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	decoded, err := fromJSON(&j)
	if err != nil {
		return err
	}
	if err := decoded.Validate(); err != nil {
		return fmt.Errorf("plan: decoded plan invalid: %w", err)
	}
	n.setDecoded(decoded)
	n.fp.Store(nil)
	return nil
}

// setDecoded copies the structural fields one by one rather than
// *n = *decoded: the fingerprint memo is an atomic (non-copyable), and
// a decode target must start with a cold memo anyway. The plain writes
// live in their own method, apart from the memo's atomic reset, because
// a decode target is unshared by contract — no concurrent reader exists
// until UnmarshalJSON returns.
func (n *Node) setDecoded(decoded *Node) {
	n.Op = decoded.Op
	n.Relation = decoded.Relation
	n.IndexColumn = decoded.IndexColumn
	n.Preds = decoded.Preds
	n.Left = decoded.Left
	n.Right = decoded.Right
}

func opFromString(s string) (Op, error) {
	for _, op := range []Op{OpSeqScan, OpIndexScan, OpIndexNLJoin, OpHashJoin, OpMergeJoin, OpAggregate, OpAntiJoin, OpGroupAggregate} {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("plan: unknown operator %q", s)
}

func fromJSON(j *nodeJSON) (*Node, error) {
	if j == nil {
		return nil, nil
	}
	op, err := opFromString(j.Op)
	if err != nil {
		return nil, err
	}
	left, err := fromJSON(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := fromJSON(j.Right)
	if err != nil {
		return nil, err
	}
	return &Node{
		Op:          op,
		Relation:    j.Relation,
		IndexColumn: j.IndexColumn,
		Preds:       normPreds(j.Preds),
		Left:        left,
		Right:       right,
	}, nil
}
