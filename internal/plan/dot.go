package plan

import (
	"fmt"
	"strings"
)

// DOT renders the plan as a Graphviz digraph, one box per operator with its
// relation/index annotations and applied predicate IDs — handy for
// inspecting bouquet plans outside the terminal (`dot -Tsvg`).
func (n *Node) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	id := 0
	var rec func(m *Node) int
	rec = func(m *Node) int {
		me := id
		id++
		label := m.Op.String()
		if m.Relation != "" {
			label += "\\n" + m.Relation
			if m.IndexColumn != "" {
				label += "." + m.IndexColumn
			}
		}
		if len(m.Preds) > 0 {
			label += fmt.Sprintf("\\npreds %v", m.Preds)
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"];\n", me, label)
		if m.Left != nil {
			child := rec(m.Left)
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", me, child)
		}
		if m.Right != nil {
			child := rec(m.Right)
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", me, child)
		}
		return me
	}
	rec(n)
	sb.WriteString("}\n")
	return sb.String()
}
