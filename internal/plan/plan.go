// Package plan defines physical execution plan trees: the artifacts the
// optimizer (internal/optimizer) produces, the cost model (internal/cost)
// prices, the executor (internal/exec) runs, and the bouquet machinery
// (internal/core) switches between.
//
// Plans are immutable after construction. Identity is structural: two plans
// with the same fingerprint are the same plan, which is how POSP plan
// diagrams count distinct plans.
package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Op enumerates physical operators.
type Op int

const (
	// OpSeqScan reads a base relation sequentially, applying its
	// selection predicates on the fly.
	OpSeqScan Op = iota
	// OpIndexScan reads a base relation through an index on one
	// selection predicate's column, applying remaining selections as
	// residual filters.
	OpIndexScan
	// OpIndexNLJoin is an index nested-loops join: for each outer (left)
	// row, probe an index on the inner (right) base relation's join
	// column.
	OpIndexNLJoin
	// OpHashJoin builds a hash table on the right child and probes it
	// with the left child.
	OpHashJoin
	// OpMergeJoin sorts both children on the join keys (costing treats
	// the sorts as part of the join) and merges.
	OpMergeJoin
	// OpAggregate is a scalar (group-less) aggregate over its child:
	// the decision-support queries' COUNT/SUM root. It applies no
	// predicates and emits exactly one row.
	OpAggregate
	// OpAntiJoin is a hash anti-join (NOT EXISTS): outer (Left) rows
	// pass iff no row of the inner base relation (Relation/IndexColumn)
	// matches on the anti-join predicate. The output schema is the
	// outer's — the inner is consumed by the existential check.
	OpAntiJoin
	// OpGroupAggregate is a hash aggregate grouping its child's rows by
	// one column (Relation/IndexColumn name the grouping column) and
	// emitting one (group, count) row per distinct value.
	OpGroupAggregate
)

// String implements fmt.Stringer with the paper's operator abbreviations.
func (o Op) String() string {
	switch o {
	case OpSeqScan:
		return "SeqScan"
	case OpIndexScan:
		return "IdxScan"
	case OpIndexNLJoin:
		return "NL"
	case OpHashJoin:
		return "HJ"
	case OpMergeJoin:
		return "MJ"
	case OpAggregate:
		return "AGG"
	case OpAntiJoin:
		return "ANTI"
	case OpGroupAggregate:
		return "GAGG"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// IsJoin reports whether the operator combines two inputs.
func (o Op) IsJoin() bool {
	return o == OpIndexNLJoin || o == OpHashJoin || o == OpMergeJoin || o == OpAntiJoin
}

// IsScan reports whether the operator reads a base relation.
func (o Op) IsScan() bool {
	return o == OpSeqScan || o == OpIndexScan
}

// Node is one operator of a physical plan tree.
type Node struct {
	// Op is the physical operator.
	Op Op

	// Relation is the base relation name (scans and the inner side of
	// OpIndexNLJoin, where it names the probed relation).
	Relation string
	// IndexColumn is the probed column for OpIndexScan and
	// OpIndexNLJoin.
	IndexColumn string

	// Preds are the predicate IDs applied at this node: selection
	// predicates at scans, join predicates at joins. Order is
	// normalized (ascending) at construction.
	Preds []int

	// Left and Right are the children. Scans have none. OpIndexNLJoin
	// has only Left (the outer); its inner is the Relation/IndexColumn
	// pair, probed per outer row.
	Left  *Node
	Right *Node

	// fp memoizes Fingerprint. Nodes are immutable after construction, so
	// the canonical string is computed at most a handful of times even
	// under concurrent access; the atomic makes the lazy fill race-free
	// (recomputation is idempotent).
	fp atomic.Pointer[string]
}

// NewSeqScan builds a sequential scan of rel applying the given selection
// predicate IDs.
func NewSeqScan(rel string, preds []int) *Node {
	return &Node{Op: OpSeqScan, Relation: rel, Preds: normPreds(preds)}
}

// NewIndexScan builds an index scan of rel via the index on col (which must
// be the column of the predicate driving the scan), applying preds (the
// driving predicate plus residual filters).
func NewIndexScan(rel, col string, preds []int) *Node {
	return &Node{Op: OpIndexScan, Relation: rel, IndexColumn: col, Preds: normPreds(preds)}
}

// NewIndexNLJoin builds an index nested-loops join with outer as the outer
// input, probing innerRel's index on innerCol, applying the join predicate
// IDs in preds.
func NewIndexNLJoin(outer *Node, innerRel, innerCol string, preds []int) *Node {
	return &Node{Op: OpIndexNLJoin, Relation: innerRel, IndexColumn: innerCol, Preds: normPreds(preds), Left: outer}
}

// NewHashJoin builds a hash join probing with left and building on right.
func NewHashJoin(left, right *Node, preds []int) *Node {
	return &Node{Op: OpHashJoin, Preds: normPreds(preds), Left: left, Right: right}
}

// NewMergeJoin builds a sort-merge join of left and right.
func NewMergeJoin(left, right *Node, preds []int) *Node {
	return &Node{Op: OpMergeJoin, Preds: normPreds(preds), Left: left, Right: right}
}

// NewAggregate builds a scalar aggregate over child.
func NewAggregate(child *Node) *Node {
	return &Node{Op: OpAggregate, Left: child}
}

// NewAntiJoin builds a hash anti-join: outer rows pass iff no innerRel row
// matches on the single anti-join predicate pred (innerCol is the probed
// inner column).
func NewAntiJoin(outer *Node, innerRel, innerCol string, pred int) *Node {
	return &Node{Op: OpAntiJoin, Relation: innerRel, IndexColumn: innerCol, Preds: []int{pred}, Left: outer}
}

// NewGroupAggregate builds a hash aggregate over child, grouping by
// rel.col.
func NewGroupAggregate(child *Node, rel, col string) *Node {
	return &Node{Op: OpGroupAggregate, Relation: rel, IndexColumn: col, Left: child}
}

func normPreds(preds []int) []int {
	out := make([]int, len(preds))
	copy(out, preds)
	sort.Ints(out)
	return out
}

// Relations returns the set of base relations in the subtree rooted at n.
func (n *Node) Relations() map[string]bool {
	out := make(map[string]bool)
	n.visit(func(m *Node) {
		if m.Relation != "" {
			out[m.Relation] = true
		}
	})
	return out
}

// visit walks the subtree pre-order.
func (n *Node) visit(f func(*Node)) {
	f(n)
	if n.Left != nil {
		n.Left.visit(f)
	}
	if n.Right != nil {
		n.Right.visit(f)
	}
}

// Walk calls f on every node in pre-order.
func (n *Node) Walk(f func(*Node)) { n.visit(f) }

// AllPreds returns the union of predicate IDs applied anywhere in the
// subtree, ascending.
func (n *Node) AllPreds() []int {
	set := make(map[int]bool)
	n.visit(func(m *Node) {
		for _, p := range m.Preds {
			set[p] = true
		}
	})
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// NumNodes returns the operator count of the subtree.
func (n *Node) NumNodes() int {
	count := 0
	n.visit(func(*Node) { count++ })
	return count
}

// PredDepth returns the depth (root = 0) of the shallowest node applying
// predicate id, and the *height from the leaves* of that node as the second
// value; ok is false if the predicate is not applied in this subtree.
//
// The bouquet AxisPlans heuristic (§5.1) prefers plans whose error-prone
// node occurs "deepest in the plan-tree", i.e. earliest in evaluation
// order — that corresponds to the maximum depth value returned here.
func (n *Node) PredDepth(id int) (depth int, ok bool) {
	best := -1
	var rec func(m *Node, d int)
	rec = func(m *Node, d int) {
		for _, p := range m.Preds {
			if p == id && d > best {
				best = d
			}
		}
		if m.Left != nil {
			rec(m.Left, d+1)
		}
		if m.Right != nil {
			rec(m.Right, d+1)
		}
	}
	rec(n, 0)
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Fingerprint returns a canonical string uniquely identifying the plan's
// structure. Plans compare equal iff their fingerprints are equal. The
// string is memoized on first use (plans are immutable), so repeated
// identity checks — optimizer tie-breaks, diagram interning, perturbed
// costing — do not rebuild it.
func (n *Node) Fingerprint() string {
	if p := n.fp.Load(); p != nil {
		return *p
	}
	var sb strings.Builder
	n.fingerprint(&sb)
	s := sb.String()
	n.fp.Store(&s)
	return s
}

func (n *Node) fingerprint(sb *strings.Builder) {
	if p := n.fp.Load(); p != nil {
		// A memoized subtree (e.g. a shared scan leaf) pastes its
		// canonical form directly.
		sb.WriteString(*p)
		return
	}
	sb.WriteString(n.Op.String())
	if n.Relation != "" {
		sb.WriteByte('[')
		sb.WriteString(n.Relation)
		if n.IndexColumn != "" {
			sb.WriteByte('.')
			sb.WriteString(n.IndexColumn)
		}
		sb.WriteByte(']')
	}
	if len(n.Preds) > 0 {
		sb.WriteByte('{')
		for i, p := range n.Preds {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(sb, "%d", p)
		}
		sb.WriteByte('}')
	}
	if n.Left != nil || n.Right != nil {
		sb.WriteByte('(')
		if n.Left != nil {
			n.Left.fingerprint(sb)
		}
		if n.Right != nil {
			sb.WriteByte(',')
			n.Right.fingerprint(sb)
		}
		sb.WriteByte(')')
	}
}

// String renders a compact one-line form, e.g. "HJ(NL(IdxScan[part],lineitem),SeqScan[orders])".
func (n *Node) String() string { return n.Fingerprint() }

// Render returns a multi-line indented tree rendering for explain output.
func (n *Node) Render() string {
	var sb strings.Builder
	n.render(&sb, 0)
	return sb.String()
}

func (n *Node) render(sb *strings.Builder, indent int) {
	sb.WriteString(strings.Repeat("  ", indent))
	sb.WriteString(n.Op.String())
	if n.Relation != "" {
		fmt.Fprintf(sb, " %s", n.Relation)
		if n.IndexColumn != "" {
			fmt.Fprintf(sb, " (index on %s)", n.IndexColumn)
		}
	}
	if len(n.Preds) > 0 {
		fmt.Fprintf(sb, " preds=%v", n.Preds)
	}
	sb.WriteByte('\n')
	if n.Left != nil {
		n.Left.render(sb, indent+1)
	}
	if n.Right != nil {
		n.Right.render(sb, indent+1)
	}
}

// Validate checks structural sanity: scans are leaves, joins have the
// required children, every node with an index names a column, and no
// predicate is applied twice.
func (n *Node) Validate() error {
	seen := make(map[int]bool)
	var rec func(m *Node) error
	rec = func(m *Node) error {
		switch m.Op {
		case OpSeqScan:
			if m.Left != nil || m.Right != nil {
				return fmt.Errorf("plan: SeqScan %s has children", m.Relation)
			}
			if m.Relation == "" {
				return fmt.Errorf("plan: SeqScan without relation")
			}
		case OpIndexScan:
			if m.Left != nil || m.Right != nil {
				return fmt.Errorf("plan: IdxScan %s has children", m.Relation)
			}
			if m.Relation == "" || m.IndexColumn == "" {
				return fmt.Errorf("plan: IdxScan missing relation or index column")
			}
		case OpIndexNLJoin:
			if m.Left == nil || m.Right != nil {
				return fmt.Errorf("plan: NL join must have exactly a left (outer) child")
			}
			if m.Relation == "" || m.IndexColumn == "" {
				return fmt.Errorf("plan: NL join missing inner relation or index column")
			}
			if len(m.Preds) == 0 {
				return fmt.Errorf("plan: NL join without join predicate")
			}
		case OpHashJoin, OpMergeJoin:
			if m.Left == nil || m.Right == nil {
				return fmt.Errorf("plan: %s must have two children", m.Op)
			}
			if len(m.Preds) == 0 {
				return fmt.Errorf("plan: %s without join predicate", m.Op)
			}
		case OpAggregate:
			if m.Left == nil || m.Right != nil {
				return fmt.Errorf("plan: AGG must have exactly one child")
			}
			if len(m.Preds) > 0 {
				return fmt.Errorf("plan: AGG applies no predicates")
			}
		case OpAntiJoin:
			if m.Left == nil || m.Right != nil {
				return fmt.Errorf("plan: ANTI must have exactly a left (outer) child")
			}
			if m.Relation == "" || m.IndexColumn == "" {
				return fmt.Errorf("plan: ANTI missing inner relation or column")
			}
			if len(m.Preds) != 1 {
				return fmt.Errorf("plan: ANTI applies exactly one predicate")
			}
		case OpGroupAggregate:
			if m.Left == nil || m.Right != nil {
				return fmt.Errorf("plan: GAGG must have exactly one child")
			}
			if m.Relation == "" || m.IndexColumn == "" {
				return fmt.Errorf("plan: GAGG missing grouping column")
			}
			if len(m.Preds) > 0 {
				return fmt.Errorf("plan: GAGG applies no predicates")
			}
		default:
			return fmt.Errorf("plan: unknown operator %d", int(m.Op))
		}
		for _, p := range m.Preds {
			if seen[p] {
				return fmt.Errorf("plan: predicate %d applied twice", p)
			}
			seen[p] = true
		}
		if m.Left != nil {
			if err := rec(m.Left); err != nil {
				return err
			}
		}
		if m.Right != nil {
			if err := rec(m.Right); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(n)
}
