package cost

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
)

// fixture builds a 3-relation chain query (selection on part, two PK-FK
// joins) over the TPC-H shape, plus a family of plans covering every
// operator.
type fixture struct {
	q      *query.Query
	coster *Coster
	plans  []*plan.Node
}

func newFixture(t testing.TB, model Model) *fixture {
	t.Helper()
	cat := catalog.TPCHLike(0.01)
	q := query.NewBuilder("fx", cat).
		Relation("part").Relation("lineitem").Relation("orders").
		SelectionPred("part", "p_retailprice", 0.1, true).
		JoinPred("part", "p_partkey", "lineitem", "l_partkey", query.PKFKSel(cat, "part"), true).
		JoinPred("lineitem", "l_orderkey", "orders", "o_orderkey", query.PKFKSel(cat, "orders"), true).
		MustBuild()

	scanP := plan.NewSeqScan("part", []int{0})
	idxP := plan.NewIndexScan("part", "p_retailprice", []int{0})
	scanL := plan.NewSeqScan("lineitem", nil)
	scanO := plan.NewSeqScan("orders", nil)

	plans := []*plan.Node{
		plan.NewHashJoin(plan.NewHashJoin(scanL, scanP, []int{1}), scanO, []int{2}),
		plan.NewMergeJoin(plan.NewMergeJoin(scanL, idxP, []int{1}), scanO, []int{2}),
		plan.NewIndexNLJoin(plan.NewIndexNLJoin(idxP, "lineitem", "l_partkey", []int{1}), "orders", "o_orderkey", []int{2}),
		plan.NewHashJoin(plan.NewMergeJoin(scanO, scanL, []int{2}), scanP, []int{1}),
	}
	for _, p := range plans {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{q: q, coster: NewCoster(q, model), plans: plans}
}

func TestCostPositiveAndFinite(t *testing.T) {
	fx := newFixture(t, Postgres())
	sels := DefaultSels(fx.q)
	for i, p := range fx.plans {
		c := fx.coster.Cost(p, sels)
		if !(c > 0) || math.IsInf(c.F(), 0) || math.IsNaN(c.F()) {
			t.Errorf("plan %d cost = %v", i, c)
		}
	}
}

// TestPCMProperty is the core invariant of the whole reproduction: plan
// cost is monotonically non-decreasing in every predicate selectivity
// (§2's Plan Cost Monotonicity), checked with testing/quick over random
// selectivity pairs for every operator mix.
func TestPCMProperty(t *testing.T) {
	for _, model := range []Model{Postgres(), Commercial()} {
		fx := newFixture(t, model)
		check := func(planIdx int) func(s0a, s1a, s2a, bump float64) bool {
			p := fx.plans[planIdx%len(fx.plans)]
			return func(s0a, s1a, s2a, bump float64) bool {
				lo := Selectivities{Sel(clamp01(s0a)), Sel(clampJoin(s1a)), Sel(clampJoin(s2a))}
				hi := lo.Clone()
				// Bump one random dimension upward.
				d := int(math.Mod(math.Abs(bump)*1000, 3))
				if d < 0 || d > 2 { // NaN/Inf inputs
					d = 0
				}
				hi[d] = hi[d] * Sel(1+math.Mod(math.Abs(bump), 3))
				if math.IsNaN(hi[d].F()) || math.IsInf(hi[d].F(), 0) {
					hi[d] = lo[d]
				}
				if d == 0 && hi[d] > 1 {
					hi[d] = 1
				}
				return fx.coster.Cost(p, hi) >= fx.coster.Cost(p, lo).Scale(1-1e-12)
			}
		}
		for pi := range fx.plans {
			if err := quick.Check(check(pi), &quick.Config{MaxCount: 300}); err != nil {
				t.Errorf("model %s plan %d violates PCM: %v", model.Name, pi, err)
			}
		}
	}
}

func clamp01(v float64) float64 {
	v = math.Abs(v)
	v = math.Mod(v, 1)
	if v < 1e-6 {
		v = 1e-6
	}
	return v
}

func clampJoin(v float64) float64 {
	return clamp01(v) * 1e-3
}

func TestDetailConsistency(t *testing.T) {
	fx := newFixture(t, Postgres())
	sels := DefaultSels(fx.q)
	for i, p := range fx.plans {
		det := fx.coster.Detail(p, sels)
		if len(det) != p.NumNodes() {
			t.Fatalf("plan %d: detail has %d entries, plan has %d nodes", i, len(det), p.NumNodes())
		}
		root := det[len(det)-1]
		if root.Node != p {
			t.Fatalf("plan %d: last detail entry is not the root", i)
		}
		if got := fx.coster.Cost(p, sels); math.Abs((got - root.TotalCost).F()) > 1e-9*got.F() {
			t.Fatalf("plan %d: Cost %g != Detail root total %g", i, got, root.TotalCost)
		}
		// Total = sum of self costs.
		var sum Cost
		for _, nc := range det {
			if nc.SelfCost < 0 {
				t.Fatalf("plan %d: negative self cost %g", i, nc.SelfCost)
			}
			sum += nc.SelfCost
		}
		if math.Abs((sum - root.TotalCost).F()) > 1e-9*sum.F() {
			t.Fatalf("plan %d: Σself %g != total %g", i, sum, root.TotalCost)
		}
	}
}

func TestRowsMatchSelectivityAlgebra(t *testing.T) {
	fx := newFixture(t, Postgres())
	cat := fx.q.Catalog
	sels := Selectivities{0.2, 1e-4, 2e-5}
	partCard := float64(cat.MustRelation("part").Card)
	liCard := float64(cat.MustRelation("lineitem").Card)
	ordCard := float64(cat.MustRelation("orders").Card)
	want := partCard * liCard * ordCard * sels[0].F() * sels[1].F() * sels[2].F()
	for i, p := range fx.plans {
		got := fx.coster.Rows(p, sels).F()
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("plan %d rows = %g, want %g (cardinality must be plan-invariant)", i, got, want)
		}
	}
}

func TestIndexVersusSeqScanCrossover(t *testing.T) {
	fx := newFixture(t, Postgres())
	seq := plan.NewSeqScan("part", []int{0})
	idx := plan.NewIndexScan("part", "p_retailprice", []int{0})
	sels := DefaultSels(fx.q)

	sels[0] = 1e-4
	if fx.coster.Cost(idx, sels) >= fx.coster.Cost(seq, sels) {
		t.Error("index scan should win at very low selectivity")
	}
	sels[0] = 0.9
	if fx.coster.Cost(idx, sels) <= fx.coster.Cost(seq, sels) {
		t.Error("sequential scan should win at high selectivity")
	}
}

func TestJoinOperatorCrossover(t *testing.T) {
	// NL should win when the outer is tiny; HJ when it is large.
	fx := newFixture(t, Postgres())
	idxP := plan.NewIndexScan("part", "p_retailprice", []int{0})
	nl := plan.NewIndexNLJoin(idxP, "lineitem", "l_partkey", []int{1})
	hj := plan.NewHashJoin(plan.NewSeqScan("lineitem", nil), plan.NewSeqScan("part", []int{0}), []int{1})
	sels := DefaultSels(fx.q)

	sels[0] = 1e-4
	if fx.coster.Cost(nl, sels) >= fx.coster.Cost(hj, sels) {
		t.Error("NL join should win with a tiny outer")
	}
	sels[0] = 1.0
	if fx.coster.Cost(nl, sels) <= fx.coster.Cost(hj, sels) {
		t.Error("hash join should win with a large outer")
	}
}

func TestModelsDiffer(t *testing.T) {
	pg := newFixture(t, Postgres())
	com := newFixture(t, Commercial())
	sels := DefaultSels(pg.q)
	same := true
	for i := range pg.plans {
		a := pg.coster.Cost(pg.plans[i], sels)
		b := com.coster.Cost(com.plans[i], sels)
		if math.Abs((a - b).F()) > 1e-9*a.F() {
			same = false
		}
	}
	if same {
		t.Fatal("commercial model prices identically to postgres model")
	}
}

func TestPerturbationBounds(t *testing.T) {
	fx := newFixture(t, Postgres())
	delta := 0.4
	sels := DefaultSels(fx.q)
	rng := rand.New(rand.NewSource(7))
	for seed := uint64(0); seed < 20; seed++ {
		pert := fx.coster.WithPerturbation(delta, seed)
		for _, p := range fx.plans {
			s := sels.Clone()
			s[0] = Sel(clamp01(rng.Float64()))
			base := fx.coster.Cost(p, s)
			got := pert.Cost(p, s)
			if got < base.Scale(Ratio(1/(1+delta)*(1-1e-9))) || got > base.Scale(Ratio((1+delta)*(1+1e-9))) {
				t.Fatalf("seed %d: perturbed cost %g outside [%g, %g]",
					seed, got, base.Scale(Ratio(1/(1+delta))), base.Scale(Ratio(1+delta)))
			}
		}
	}
}

func TestPerturbationDeterministic(t *testing.T) {
	fx := newFixture(t, Postgres())
	sels := DefaultSels(fx.q)
	a := fx.coster.WithPerturbation(0.4, 11)
	b := fx.coster.WithPerturbation(0.4, 11)
	c := fx.coster.WithPerturbation(0.4, 12)
	for _, p := range fx.plans {
		if a.Cost(p, sels) != b.Cost(p, sels) {
			t.Fatal("same seed must perturb identically")
		}
	}
	diff := false
	for _, p := range fx.plans {
		if a.Cost(p, sels) != c.Cost(p, sels) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should perturb differently")
	}
}

func TestPerturbationPreservesPCM(t *testing.T) {
	// The perturbation is a per-node constant factor, so PCM survives.
	fx := newFixture(t, Postgres())
	pert := fx.coster.WithPerturbation(0.4, 3)
	f := func(s0, s1, s2 float64, d uint8) bool {
		lo := Selectivities{Sel(clamp01(s0)), Sel(clampJoin(s1)), Sel(clampJoin(s2))}
		hi := lo.Clone()
		dim := int(d) % 3
		hi[dim] *= 2
		if dim == 0 && hi[dim] > 1 {
			hi[dim] = 1
		}
		for _, p := range fx.plans {
			if pert.Cost(p, hi) < pert.Cost(p, lo).Scale(1-1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDeltaPanics(t *testing.T) {
	fx := newFixture(t, Postgres())
	defer func() {
		if recover() == nil {
			t.Fatal("WithPerturbation(-1) should panic")
		}
	}()
	fx.coster.WithPerturbation(-1, 0)
}

func TestDefaultSels(t *testing.T) {
	fx := newFixture(t, Postgres())
	sels := DefaultSels(fx.q)
	if len(sels) != fx.q.NumPredicates() {
		t.Fatalf("DefaultSels length %d", len(sels))
	}
	for i, p := range fx.q.Predicates() {
		if sels[i] != Sel(p.DefaultSel) {
			t.Fatalf("sels[%d] = %g, want %g", i, sels[i], p.DefaultSel)
		}
	}
}

func TestSelectivitiesClone(t *testing.T) {
	s := Selectivities{1, 2, 3}
	c := s.Clone()
	c[0] = 9
	if s[0] == 9 {
		t.Fatal("Clone aliased the original")
	}
}

func TestSpillKicksInForLargeBuilds(t *testing.T) {
	// A hash join whose build side exceeds work_mem must cost strictly
	// more than a same-shape join under unbounded memory.
	fx := newFixture(t, Postgres())
	big := Model{Name: "bigmem", P: PostgresParams()}
	big.P.WorkMemBytes = 1e15
	unbounded := NewCoster(fx.q, big)
	hj := fx.plans[0]
	sels := DefaultSels(fx.q)
	if fx.coster.Cost(hj, sels) <= unbounded.Cost(hj, sels) {
		t.Error("spilling hash join should cost more than in-memory")
	}
}

func TestClusteredIndexCheaperThanUnclustered(t *testing.T) {
	cat := catalog.TPCHLike(0.01)
	// p_partkey is clustered (key column); p_retailprice is not.
	q := query.NewBuilder("cl", cat).
		Relation("part").
		SelectionPred("part", "p_partkey", 0.1, true).
		SelectionPred("part", "p_retailprice", 0.1, true).
		MustBuild()
	coster := NewCoster(q, Postgres())
	clustered := plan.NewIndexScan("part", "p_partkey", []int{0, 1})
	unclustered := plan.NewIndexScan("part", "p_retailprice", []int{0, 1})
	sels := Selectivities{0.1, 0.1}
	if coster.Cost(clustered, sels) >= coster.Cost(unclustered, sels) {
		t.Error("clustered index scan should be cheaper at equal selectivity")
	}
}

func TestExplain(t *testing.T) {
	fx := newFixture(t, Postgres())
	sels := DefaultSels(fx.q)
	out := fx.coster.Explain(fx.plans[0], sels)
	for _, want := range []string{"HJ", "SeqScan lineitem", "rows=", "self=", "total=", "preds="} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q in:\n%s", want, out)
		}
	}
	// The root line carries the full plan cost.
	firstLine := strings.SplitN(out, "\n", 2)[0]
	want := fmt.Sprintf("total=%.4g", fx.coster.Cost(fx.plans[0], sels))
	if !strings.Contains(firstLine, want) {
		t.Errorf("root total mismatch: %s (want %s)", firstLine, want)
	}
	// Indentation reflects depth.
	if !strings.Contains(out, "\n  ") {
		t.Error("children not indented")
	}
}
