// Dimensional unit types for the quantities the bouquet guarantee is
// stated over. Every number in the MSO argument has a dimension — a
// selectivity in (0,1], a plan cost in model units, a row cardinality, or
// a dimensionless ratio — and mixing them silently corrupts the bound the
// same way mis-estimated selectivities corrupt a classical optimizer.
// Defining each dimension as its own float64 type makes the Go type
// checker reject cross-unit assignment and arithmetic outright, and gives
// the unitflow analyzer (internal/analysis/unitflow) firm provenance
// anchors for values that are laundered through plain float64.
//
// Conversion discipline: entering a dimension is an explicit conversion
// (cost.Sel(x)); leaving it is the F method. unitflow tracks both, so a
// float64 derived from a Card that is later converted to a Sel is a
// compile-gate failure even though the type checker cannot see it.

package cost

// Sel is a predicate selectivity: a dimensionless fraction in (0,1]
// (paper §2). The selbounds analyzer enforces the domain on constants;
// the type enforces the dimension on variables.
type Sel float64

// Cost is a plan cost in abstract optimizer cost-model units (the unit
// every isocost budget, contour step, and MSO numerator is denominated
// in).
type Cost float64

// Card is a row cardinality: an estimated or actual tuple count.
type Card float64

// Ratio is a dimensionless quantity: the isocost ladder ratio r, the
// anorexic slack λ, an MSO or sub-optimality factor — anything obtained
// by dividing two like-dimensioned quantities.
type Ratio float64

// F unwraps the selectivity to a bare float64 for unit-free numerics.
func (s Sel) F() float64 { return float64(s) }

// F unwraps the cost to a bare float64 for unit-free numerics.
func (c Cost) F() float64 { return float64(c) }

// F unwraps the cardinality to a bare float64 for unit-free numerics.
func (c Card) F() float64 { return float64(c) }

// F unwraps the ratio to a bare float64 for unit-free numerics.
func (r Ratio) F() float64 { return float64(r) }

// Scale multiplies a cost by a dimensionless ratio, yielding a cost —
// the only sanctioned way to inflate a budget (e.g. by 1+λ).
func (c Cost) Scale(r Ratio) Cost { return Cost(float64(c) * float64(r)) }

// Over divides two costs, yielding the dimensionless ratio between them
// (the MSO bound's shape: spend over oracle cost).
func (c Cost) Over(d Cost) Ratio { return Ratio(float64(c) / float64(d)) }

// ToSels converts a bare []float64 selectivity vector into a typed
// assignment. It is the bridge for numeric code (grids, decoders) that
// produces selectivities as plain floats.
func ToSels(fs []float64) Selectivities {
	out := make(Selectivities, len(fs))
	for i, f := range fs {
		out[i] = Sel(f)
	}
	return out
}

// Floats unwraps the assignment to a bare []float64 (a fresh slice).
func (s Selectivities) Floats() []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = float64(v)
	}
	return out
}
