// Package cost implements the optimizer cost models: PCM-compliant
// (plan-cost-monotonic) analytic cost functions for every physical operator
// in internal/plan, parameterised so that two independent "engines" — a
// PostgreSQL-flavoured model and a commercial-flavoured model — can drive
// the same optimizer (paper §6.8 / Fig. 19).
//
// The central type is Coster, which prices a plan tree at an arbitrary
// selectivity assignment. This is the paper's "abstract plan costing"
// combined with "selectivity injection" (§4.2, §5.4): the two optimizer
// capabilities the entire bouquet construction rests on.
//
// Every cost term has a non-negative coefficient on a quantity that is
// monotonically non-decreasing in every predicate selectivity, so plan
// costs are monotone over the ESS — the PCM assumption of §2, enforced by
// property tests.
package cost

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/plan"
	"repro/internal/query"
)

// Params are the knobs of a cost model, in the spirit of PostgreSQL's
// cost GUCs.
type Params struct {
	// SeqPageCost is the cost of a sequential page read.
	SeqPageCost float64
	// RandomPageCost is the cost of a random page read.
	RandomPageCost float64
	// CPUTupleCost is the cost of emitting/processing one tuple.
	CPUTupleCost float64
	// CPUIndexTupleCost is the cost of one index-entry traversal.
	CPUIndexTupleCost float64
	// CPUOperatorCost is the cost of one predicate/operator evaluation.
	CPUOperatorCost float64
	// HashQualCost is the per-probe cost of a hash-table lookup.
	HashQualCost float64
	// SortCmpCost is the per-comparison cost of sorting.
	SortCmpCost float64
	// WorkMemBytes is the memory available to a hash or sort before it
	// spills to disk.
	WorkMemBytes float64
	// SpillPageCost is the cost of writing+reading one spilled page.
	SpillPageCost float64
}

// PostgresParams returns parameters mirroring PostgreSQL 8.4 defaults
// (seq_page_cost=1, random_page_cost=4, cpu_tuple_cost=0.01,
// cpu_index_tuple_cost=0.005, cpu_operator_cost=0.0025, work_mem=1MB).
func PostgresParams() Params {
	return Params{
		SeqPageCost:       1.0,
		RandomPageCost:    4.0,
		CPUTupleCost:      0.01,
		CPUIndexTupleCost: 0.005,
		CPUOperatorCost:   0.0025,
		HashQualCost:      0.005,
		SortCmpCost:       0.0025,
		WorkMemBytes:      1 << 20,
		SpillPageCost:     2.0,
	}
}

// CommercialParams returns an independently tuned parameter set standing in
// for the paper's commercial engine "COM": cheaper random I/O (SSD-oriented
// buffer pool assumptions), pricier CPU, larger work memory — which shifts
// every operator crossover point, exercising the claim that the bouquet
// results are not artifacts of one cost model.
func CommercialParams() Params {
	return Params{
		SeqPageCost:       1.0,
		RandomPageCost:    2.5,
		CPUTupleCost:      0.02,
		CPUIndexTupleCost: 0.004,
		CPUOperatorCost:   0.004,
		HashQualCost:      0.012,
		SortCmpCost:       0.002,
		WorkMemBytes:      8 << 20,
		SpillPageCost:     2.4,
	}
}

// Model is a named parameter set.
type Model struct {
	// Name identifies the model in reports ("postgres", "commercial").
	Name string
	// P are the cost parameters.
	P Params
}

// Postgres returns the PostgreSQL-flavoured model.
func Postgres() Model { return Model{Name: "postgres", P: PostgresParams()} }

// Commercial returns the commercial-flavoured model.
func Commercial() Model { return Model{Name: "commercial", P: CommercialParams()} }

// Selectivities assigns a selectivity to every predicate of a query,
// indexed by predicate ID.
type Selectivities []Sel

// Clone returns a copy.
func (s Selectivities) Clone() Selectivities {
	out := make(Selectivities, len(s))
	copy(out, s)
	return out
}

// DefaultSels returns the query's default selectivity assignment:
// every predicate at its DefaultSel.
func DefaultSels(q *query.Query) Selectivities {
	preds := q.Predicates()
	out := make(Selectivities, len(preds))
	for i, p := range preds {
		out[i] = Sel(p.DefaultSel)
	}
	return out
}

// Summary is the allocation-free costing result for a (sub)tree: the
// root's output cardinality and tuple width plus the tree's total cost.
// It is what the optimizer's DP memo carries per subset — everything an
// enclosing operator needs to price itself — without materializing the
// per-node breakdown Detail produces.
type Summary struct {
	// Rows is the estimated output cardinality.
	Rows Card
	// Width is the output tuple width in bytes.
	Width float64
	// Cost is the total cost of the (sub)tree.
	Cost Cost
}

// NodeCost carries the cost annotations of one plan node at one
// selectivity assignment.
type NodeCost struct {
	// Node is the annotated operator.
	Node *plan.Node
	// Rows is the estimated output cardinality.
	Rows Card
	// Width is the output tuple width in bytes.
	Width float64
	// SelfCost is the cost charged by this operator alone.
	SelfCost Cost
	// TotalCost is SelfCost plus the children's TotalCost.
	TotalCost Cost
}

// Coster prices plans for one query under one model. It is safe for
// concurrent use: all state is read-only after construction.
type Coster struct {
	q     *query.Query
	model Model

	// perturb, when non-nil, multiplies each node's SelfCost by a
	// node-specific factor; used to model bounded cost-model errors
	// (§3.4). It must return values in [1/(1+δ), 1+δ].
	perturb func(n *plan.Node) float64
}

// NewCoster returns a Coster for q under model.
func NewCoster(q *query.Query, model Model) *Coster {
	return &Coster{q: q, model: model}
}

// Query returns the query this Coster prices plans for.
func (c *Coster) Query() *query.Query { return c.q }

// Model returns the cost model in use.
func (c *Coster) Model() Model { return c.model }

// WithPerturbation returns a copy of c whose per-node costs are multiplied
// by a deterministic factor drawn from [1/(1+delta), 1+delta], keyed by the
// node's fingerprint and seed. This realises the paper's "bounded modeling
// errors" regime (§3.4): the estimated cost of any plan is within a δ error
// factor of its actual cost. Panics on a negative delta.
func (c *Coster) WithPerturbation(delta float64, seed uint64) *Coster {
	if delta < 0 {
		panic("cost: negative delta")
	}
	cp := *c
	cp.perturb = func(n *plan.Node) float64 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|", seed)
		h.Write([]byte(n.Fingerprint())) //bouquet:allow errflow: hash.Hash.Write never returns an error
		// Map hash to u in [0,1), then to a log-uniform factor in
		// [1/(1+δ), 1+δ] so under- and over-estimation are symmetric.
		u := float64(h.Sum64()%1_000_003) / 1_000_003.0
		lo, hi := math.Log(1/(1+delta)), math.Log(1+delta)
		return math.Exp(lo + u*(hi-lo))
	}
	return &cp
}

// Cost returns the total cost of root at the given selectivities.
// Panics if the plan contains an operator the model does not price.
func (c *Coster) Cost(root *plan.Node, sels Selectivities) Cost {
	return c.Price(root, sels).Cost
}

// Rows returns the output cardinality of root at the given selectivities.
// Panics if the plan contains an operator the model does not price.
func (c *Coster) Rows(root *plan.Node, sels Selectivities) Card {
	return c.Price(root, sels).Rows
}

// Price is the allocation-free costing fast path: it returns the root
// summary (rows, width, total cost) of the tree at the given
// selectivities without materializing Detail's per-node slice. Use it in
// hot loops (the optimizer's DP, plan-diagram cost matrices); use Detail
// when the per-operator breakdown matters (explain output, diagnostics).
// Panics if the plan contains an operator the model does not price.
//
//bouquet:allocfree pinned dynamically by TestPriceAllocFree
func (c *Coster) Price(root *plan.Node, sels Selectivities) Summary {
	var left, right Summary
	if root.Left != nil {
		left = c.Price(root.Left, sels)
	}
	if root.Right != nil {
		right = c.Price(root.Right, sels)
	}
	return c.PriceStep(root, left, right, sels)
}

// PriceStep prices the single operator n given the already-priced
// summaries of its children, returning n's summary. It is the O(1) kernel
// the optimizer's DP runs on: child summaries come from the memo, so a
// candidate join is priced without re-walking its subtree. Zero-value
// summaries stand in for absent children. Panics if n's operator is not
// priced by the model.
//
//bouquet:allocfree pinned dynamically by TestPriceStepAllocFree
func (c *Coster) PriceStep(n *plan.Node, left, right Summary, sels Selectivities) Summary {
	self, rows, width := c.priceOne(n, left, right, sels)
	return Summary{Rows: rows, Width: width, Cost: self + left.Cost + right.Cost}
}

// OpSpec identifies a candidate operator for node-free pricing: the same
// fields a plan.Node carries, minus the children (whose summaries are
// passed separately) and without requiring the node to exist yet.
type OpSpec struct {
	Op          plan.Op
	Relation    string
	IndexColumn string
	Preds       []int
}

// PriceSpec prices the candidate operator described by spec from its
// children's summaries without materializing a plan.Node — the optimizer
// uses it to evaluate every losing candidate allocation-free and build
// nodes only for winners. It ignores the coster's perturbation (which
// keys on node fingerprints); callers must check Perturbed first and fall
// back to PriceStep on a real node. Panics if spec's operator is not
// priced by the model.
//
//bouquet:allocfree pinned dynamically by TestPriceSpecAllocFree
func (c *Coster) PriceSpec(spec OpSpec, left, right Summary, sels Selectivities) Summary {
	self, rows, width := c.priceSpec(spec.Op, spec.Relation, spec.IndexColumn, spec.Preds, left, right, sels)
	return Summary{Rows: rows, Width: width, Cost: self + left.Cost + right.Cost}
}

// Perturbed reports whether the coster applies per-node cost perturbation
// (WithPerturbation), in which case node-free pricing via PriceSpec would
// diverge from PriceStep.
func (c *Coster) Perturbed() bool { return c.perturb != nil }

// Detail returns per-node cost annotations in post-order (children before
// parents); the last element is the root. Panics if the plan contains an
// operator the model does not price.
func (c *Coster) Detail(root *plan.Node, sels Selectivities) []NodeCost {
	var out []NodeCost
	c.detail(root, sels, &out)
	return out
}

func (c *Coster) detail(n *plan.Node, sels Selectivities, out *[]NodeCost) Summary {
	var left, right Summary
	if n.Left != nil {
		left = c.detail(n.Left, sels, out)
	}
	if n.Right != nil {
		right = c.detail(n.Right, sels, out)
	}
	self, rows, width := c.priceOne(n, left, right, sels)
	sum := Summary{Rows: rows, Width: width, Cost: self + left.Cost + right.Cost}
	*out = append(*out, NodeCost{Node: n, Rows: rows, Width: width, SelfCost: self, TotalCost: sum.Cost})
	return sum
}

// selOf returns the selectivity of predicate id under sels, falling back to
// the predicate default when sels is short (defensive; builders always pass
// full-length assignments). The bare float64 is what the operator pricing
// arithmetic below consumes.
func (c *Coster) selOf(id int, sels Selectivities) float64 {
	if id < len(sels) {
		return sels[id].F()
	}
	return c.q.Predicate(id).DefaultSel
}

// pagesFor converts a (rows, width) volume into page counts under the
// catalog page size.
func (c *Coster) pagesFor(rows, width float64) float64 {
	ps := float64(c.q.Catalog.PageSize)
	pages := rows * width / ps
	if pages < 1 {
		pages = 1
	}
	return pages
}

// priceOne prices a single operator node given its (already priced)
// children, applying the coster's perturbation (if any) on top of the
// spec-based kernel. It performs no heap allocation — the compile hot
// path's requirement.
func (c *Coster) priceOne(n *plan.Node, left, right Summary, sels Selectivities) (self Cost, outRows Card, outWidth float64) {
	self, outRows, outWidth = c.priceSpec(n.Op, n.Relation, n.IndexColumn, n.Preds, left, right, sels)
	if c.perturb != nil {
		//bouquet:allow allocbound: perturbation is an opt-in diagnostic mode (WithPerturbation); the steady-state coster has perturb == nil and TestPriceAllocFree pins that path
		self = self.Scale(Ratio(c.perturb(n)))
	}
	return self, outRows, outWidth
}

// priceSpec is the node-free operator pricing kernel: the operator's
// identity arrives as discrete fields rather than a *plan.Node, so the
// optimizer can price a candidate before deciding to materialize it. The
// pricing arithmetic runs on bare float64 (unwrapped once here); the
// results are wrapped back into their dimensions when returned.
func (c *Coster) priceSpec(op plan.Op, relation, indexColumn string, preds []int, left, right Summary, sels Selectivities) (self Cost, outRows Card, outWidth float64) {
	p := c.model.P
	leftRows, rightRows := left.Rows.F(), right.Rows.F()

	switch op {
	case plan.OpSeqScan:
		rel := c.q.Catalog.MustRelation(relation)
		card := float64(rel.Card)
		pages := float64(rel.Pages(c.q.Catalog.PageSize))
		rows := card
		for _, id := range preds {
			rows *= c.selOf(id, sels)
		}
		outRows = Card(rows)
		outWidth = float64(rel.TupleWidth)
		self = Cost(pages*p.SeqPageCost +
			card*p.CPUTupleCost +
			card*float64(len(preds))*p.CPUOperatorCost)

	case plan.OpIndexScan:
		rel := c.q.Catalog.MustRelation(relation)
		card := float64(rel.Card)
		// The driving predicate is the one on the indexed column;
		// remaining predicates are residual filters on fetched rows.
		drivingSel, residSel, residCount := 1.0, 1.0, 0
		for _, id := range preds {
			pr := c.q.Predicate(id)
			if pr.Left.Column == indexColumn && pr.Left.Relation == relation {
				drivingSel *= c.selOf(id, sels)
			} else {
				residSel *= c.selOf(id, sels)
				residCount++
			}
		}
		matched := card * drivingSel
		outRows = Card(matched * residSel)
		outWidth = float64(rel.TupleWidth)
		descent := math.Log2(card+1) * p.CPUIndexTupleCost
		idx := c.q.Catalog.Index(relation, indexColumn)
		var fetch float64
		if idx != nil && idx.Clustered {
			fetch = c.pagesFor(matched, float64(rel.TupleWidth)) * p.SeqPageCost
		} else {
			// One random heap page per matching row: the
			// uncapped form keeps the cost strictly monotone and
			// maximises the Cmax/Cmin gradient ("hard-nut"
			// environments, §6).
			fetch = matched * p.RandomPageCost
		}
		self = Cost(descent +
			matched*p.CPUIndexTupleCost +
			fetch +
			matched*float64(residCount)*p.CPUOperatorCost +
			matched*p.CPUTupleCost)

	case plan.OpIndexNLJoin:
		rel := c.q.Catalog.MustRelation(relation)
		innerCard := float64(rel.Card)
		// Partition preds: join predicates determine matches per
		// probe; selection predicates on the inner relation are
		// residual filters.
		joinSel, filterSel, filterCount := 1.0, 1.0, 0
		for _, id := range preds {
			pr := c.q.Predicate(id)
			if pr.Kind == query.Join {
				joinSel *= c.selOf(id, sels)
			} else {
				filterSel *= c.selOf(id, sels)
				filterCount++
			}
		}
		probes := leftRows
		matchesPerProbe := joinSel * innerCard
		matches := probes * matchesPerProbe
		outRows = Card(matches * filterSel)
		outWidth = left.Width + float64(rel.TupleWidth)
		descent := math.Log2(innerCard+1) * p.CPUIndexTupleCost
		idx := c.q.Catalog.Index(relation, indexColumn)
		perMatch := p.RandomPageCost
		if idx != nil && idx.Clustered {
			perMatch = p.SeqPageCost
		}
		self = Cost(probes*descent +
			matches*(p.CPUIndexTupleCost+perMatch) +
			matches*float64(filterCount)*p.CPUOperatorCost +
			outRows.F()*p.CPUTupleCost)

	case plan.OpHashJoin:
		joinSel := 1.0
		for _, id := range preds {
			joinSel *= c.selOf(id, sels)
		}
		outRows = Card(joinSel * leftRows * rightRows)
		outWidth = left.Width + right.Width
		build := rightRows * (p.CPUOperatorCost + p.CPUTupleCost)
		probe := leftRows * p.HashQualCost
		emit := outRows.F() * p.CPUTupleCost
		spill := 0.0
		if bytes := rightRows * right.Width; bytes > p.WorkMemBytes {
			// Multi-batch (Grace) hash join: both inputs are
			// written out and re-read once.
			spill = (c.pagesFor(leftRows, left.Width) +
				c.pagesFor(rightRows, right.Width)) * p.SpillPageCost
		}
		self = Cost(build + probe + emit + spill)

	case plan.OpMergeJoin:
		joinSel := 1.0
		for _, id := range preds {
			joinSel *= c.selOf(id, sels)
		}
		outRows = Card(joinSel * leftRows * rightRows)
		outWidth = left.Width + right.Width
		sortCost := c.sortCost(left) + c.sortCost(right)
		merge := (leftRows + rightRows) * p.CPUOperatorCost
		emit := outRows.F() * p.CPUTupleCost
		self = Cost(sortCost + merge + emit)

	case plan.OpAggregate:
		outRows = 1
		outWidth = 8
		self = Cost(leftRows*p.CPUOperatorCost + p.CPUTupleCost)

	case plan.OpGroupAggregate:
		// Hash aggregate: groups bounded by the column's distinct count
		// and the input cardinality (both bounds monotone).
		col := c.q.Catalog.MustRelation(relation).Column(indexColumn)
		groups := leftRows
		if col != nil && float64(col.DistinctCount) < groups {
			groups = float64(col.DistinctCount)
		}
		outRows = Card(groups)
		outWidth = 16
		self = Cost(leftRows*(p.CPUOperatorCost+p.HashQualCost) + groups*p.CPUTupleCost)

	case plan.OpAntiJoin:
		// NOT EXISTS: the predicate's selectivity is the outer pass
		// fraction (the §2 axis flip), so output — and hence cost —
		// is monotone increasing in the ESS value.
		rel := c.q.Catalog.MustRelation(relation)
		innerCard := float64(rel.Card)
		passFrac := c.selOf(preds[0], sels)
		outRows = Card(leftRows * passFrac)
		outWidth = left.Width
		build := innerCard * (p.CPUOperatorCost + p.CPUTupleCost)
		probe := leftRows * p.HashQualCost
		emit := outRows.F() * p.CPUTupleCost
		self = Cost(build + probe + emit)

	default:
		panic(fmt.Sprintf("cost: unknown operator %v", op))
	}
	return self, outRows, outWidth
}

// Explain renders the plan EXPLAIN-style: the indented operator tree with
// estimated rows, per-operator self cost and cumulative cost at the given
// selectivities — what the paper's abstract-plan-costing hook surfaces to a
// DBA inspecting a bouquet plan.
func (c *Coster) Explain(root *plan.Node, sels Selectivities) string {
	byNode := make(map[*plan.Node]NodeCost)
	for _, nc := range c.Detail(root, sels) {
		byNode[nc.Node] = nc
	}
	var sb strings.Builder
	var rec func(n *plan.Node, depth int)
	rec = func(n *plan.Node, depth int) {
		nc := byNode[n]
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Op.String())
		if n.Relation != "" {
			sb.WriteByte(' ')
			sb.WriteString(n.Relation)
			if n.IndexColumn != "" {
				fmt.Fprintf(&sb, "(%s)", n.IndexColumn)
			}
		}
		fmt.Fprintf(&sb, "  rows=%.0f self=%.4g total=%.4g", nc.Rows, nc.SelfCost, nc.TotalCost)
		if len(n.Preds) > 0 {
			fmt.Fprintf(&sb, " preds=%v", n.Preds)
		}
		sb.WriteByte('\n')
		if n.Left != nil {
			rec(n.Left, depth+1)
		}
		if n.Right != nil {
			rec(n.Right, depth+1)
		}
	}
	rec(root, 0)
	return sb.String()
}

// sortCost prices sorting one input of a merge join, including external
// sort spill passes when the input exceeds work memory.
func (c *Coster) sortCost(in Summary) float64 {
	p := c.model.P
	rows := in.Rows.F()
	if rows < 2 {
		return 0
	}
	cmp := rows * math.Log2(rows) * p.SortCmpCost
	bytes := rows * in.Width
	if bytes <= p.WorkMemBytes {
		return cmp
	}
	// External merge sort: one spill pass per merge level.
	pages := c.pagesFor(rows, in.Width)
	passes := math.Ceil(math.Log2(bytes/p.WorkMemBytes)) + 1
	if passes < 1 {
		passes = 1
	}
	return cmp + pages*passes*p.SpillPageCost
}
