package cost

import "testing"

// The Price fast path is the per-candidate kernel of the optimizer's DP;
// it must stay allocation-free (Detail remains the allocating breakdown
// API for explain/debug callers).

func TestPriceAllocFree(t *testing.T) {
	fx := newFixture(t, Postgres())
	sels := DefaultSels(fx.q)
	for i, p := range fx.plans {
		if got := testing.AllocsPerRun(50, func() { fx.coster.Price(p, sels) }); got > 0 {
			t.Errorf("Price(plan %d) allocates %.0f/call, want 0", i, got)
		}
	}
}

func TestPriceStepAllocFree(t *testing.T) {
	fx := newFixture(t, Postgres())
	sels := DefaultSels(fx.q)
	root := fx.plans[0]
	left := fx.coster.Price(root.Left, sels)
	right := fx.coster.Price(root.Right, sels)
	if got := testing.AllocsPerRun(50, func() { fx.coster.PriceStep(root, left, right, sels) }); got > 0 {
		t.Errorf("PriceStep allocates %.0f/call, want 0", got)
	}
}

func TestPriceSpecAllocFree(t *testing.T) {
	fx := newFixture(t, Postgres())
	sels := DefaultSels(fx.q)
	root := fx.plans[0]
	left := fx.coster.Price(root.Left, sels)
	right := fx.coster.Price(root.Right, sels)
	spec := OpSpec{Op: root.Op, Relation: root.Relation, IndexColumn: root.IndexColumn, Preds: root.Preds}
	if got := testing.AllocsPerRun(50, func() { fx.coster.PriceSpec(spec, left, right, sels) }); got > 0 {
		t.Errorf("PriceSpec allocates %.0f/call, want 0", got)
	}
}

func TestPriceAgreesWithDetail(t *testing.T) {
	fx := newFixture(t, Postgres())
	sels := DefaultSels(fx.q)
	for i, p := range fx.plans {
		sum := fx.coster.Price(p, sels)
		nc := fx.coster.Detail(p, sels)
		root := nc[len(nc)-1]
		if sum.Cost != root.TotalCost || sum.Rows != root.Rows || sum.Width != root.Width {
			t.Errorf("plan %d: Price %+v disagrees with Detail root %+v", i, sum, root)
		}
	}
}
