// Whatif: plan-diagram exploration. Renders a 2-D plan diagram as ASCII
// art — which plan is optimal where in the selectivity space — then applies
// the anorexic reduction and shows how a handful of plans, each allowed a
// 20% cost slack, swallows the full parametric optimal set. This is the
// compile-time machinery (§4) the bouquet is built from.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/anorexic"
	"repro/internal/catalog"
	"repro/internal/contour"
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/posp"
	"repro/internal/query"
)

func main() {
	cat := catalog.TPCHLike(1.0)
	// A 2-D space: one selection selectivity, one join selectivity.
	q, err := query.NewBuilder("whatif", cat).
		Relation("part").Relation("lineitem").Relation("orders").
		SelectionPred("part", "p_retailprice", 0.10, true).
		JoinPred("part", "p_partkey", "lineitem", "l_partkey", query.PKFKSel(cat, "part"), true).
		JoinPred("lineitem", "l_orderkey", "orders", "o_orderkey", query.PKFKSel(cat, "orders"), false).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	space, err := ess.NewSpace(q, []int{24, 24})
	if err != nil {
		log.Fatal(err)
	}

	coster := cost.NewCoster(q, cost.Postgres())
	opt := optimizer.New(coster)
	diagram := posp.Generate(opt, space, 0)
	fmt.Println(diagram)
	fmt.Println("\nplan diagram (x: join selectivity →, y: selection selectivity ↑):")
	render(diagram, nil)

	// Anorexic reduction over the full space at λ = 20%.
	flats := make([]int, space.NumPoints())
	optCost := make([]cost.Cost, space.NumPoints())
	candidates := map[int]bool{}
	for f := range flats {
		flats[f] = f
		optCost[f] = diagram.Cost(f)
		candidates[diagram.PlanID(f)] = true
	}
	var cands []int
	for pid := range candidates {
		cands = append(cands, pid)
	}
	sort.Ints(cands)
	matrix := posp.CostMatrix(diagram, coster, 0)
	red, err := anorexic.Reduce(flats, optCost, cands, matrix, anorexic.DefaultLambda)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter anorexic reduction (λ=%.0f%%): %d plans → %d plans\n",
		anorexic.DefaultLambda.F()*100, diagram.NumPlans(), red.Cardinality())
	render(diagram, red.AssignAt)

	// And the isocost contours that the bouquet executes along.
	cmin, cmax := diagram.CostBounds()
	ladder, err := contour.NewLadder(cmin, cmax, 2)
	if err != nil {
		log.Fatal(err)
	}
	contours, err := contour.Identify(diagram, ladder)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nisocost ladder: %d doubling steps over Cmax/Cmin = %.0f\n", ladder.NumSteps(), cmax/cmin)
	for _, c := range contours {
		fmt.Printf("  IC%-2d budget %-12.4g contour locations %-4d plans %v\n",
			c.K, c.Budget, len(c.Flats), c.PlanIDs)
	}
}

// render draws the diagram via the library renderer; assign overrides the
// plan at each location when non-nil.
func render(d *posp.Diagram, assign map[int]int) {
	out, err := d.RenderASCII(assign, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
