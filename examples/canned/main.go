// Canned: the deployment story the paper sketches for form-based query
// workloads (§4.2) — compile the bouquet offline, persist it, and let every
// later session load the artifact and execute immediately, skipping the
// expensive POSP identification entirely.
//
//	go run ./examples/canned
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/anorexic"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

func main() {
	w := workload.EQ2D(24)
	coster := cost.NewCoster(w.Query, w.Model)
	opt := optimizer.New(coster)

	// Offline: compile and persist (in a real deployment this JSON goes
	// to disk next to the canned query definition).
	t0 := time.Now()
	compiled, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda})
	if err != nil {
		log.Fatal(err)
	}
	compileTime := time.Since(t0)

	var artifact bytes.Buffer
	if err := compiled.Save(&artifact); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline compile: %v (%d optimizer calls) → artifact %.1f KiB\n",
		compileTime.Round(time.Millisecond), opt.Calls(), float64(artifact.Len())/1024)

	// Online: a fresh session loads the artifact — no POSP generation.
	opt.ResetCalls()
	t0 = time.Now()
	loaded, err := core.Load(&artifact, coster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online load: %v (%d optimizer calls)\n", time.Since(t0).Round(time.Microsecond), opt.Calls())
	fmt.Println(loaded)

	// Execute the canned query at a few "form inputs" (different actual
	// selectivities); the guarantee and the traces come from the loaded
	// artifact alone.
	fmt.Printf("guaranteed MSO: %.1f\n\n", loaded.BoundMSO())
	for _, qa := range []ess.Point{
		{0.001, loaded.Space.Dim(1).Hi * 0.01},
		{0.2, loaded.Space.Dim(1).Hi * 0.5},
		{0.9, loaded.Space.Dim(1).Hi * 0.9},
	} {
		e := loaded.RunOptimized(qa)
		fmt.Printf("q_a=%v:\n  %s\n", qa, e)
	}
}
