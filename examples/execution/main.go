// Execution: the run-time substrate in isolation. Generates real tables
// with controlled selectivities, then demonstrates the three engine
// capabilities the bouquet run-time is built on (§5.4): cost-limited
// partial execution, node-granularity tuple instrumentation, and spilled
// execution that starves everything downstream of the error node. Finally
// a full concrete bouquet run discovers the data's actual selectivities
// from scratch.
//
//	go run ./examples/execution
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/anorexic"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/workload"
)

func main() {
	// 2D_H_Q8a: a part ⋈ lineitem ⋈ orders instance whose two join
	// selectivities are planted at ~34% and ~46% of their legal ranges.
	rw, err := workload.HQ8a(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: actual q_a = %v\n", rw.Name, rw.Actual)

	coster := cost.NewCoster(rw.Query, rw.Model)
	opt := optimizer.New(coster)
	eng, err := exec.NewEngine(rw.Query, rw.DB, rw.Model, rw.Bindings)
	if err != nil {
		log.Fatal(err)
	}

	// A plan optimized assuming tiny selectivities — the classic
	// underestimate — run against the real data.
	wrong := opt.Optimize(rw.Space.Sels(rw.Space.Origin()))
	fmt.Printf("\nplan optimized at the origin:\n%s", wrong.Plan.Render())

	// (a) Cost-limited execution: give it a budget far below its true
	// cost and watch it abort with its instrumentation intact.
	res := eng.MustRun(wrong.Plan, exec.Options{Budget: wrong.Cost * 4})
	fmt.Printf("budgeted run: completed=%v, charged %.4g of budget %.4g\n",
		res.Completed, res.CostUsed, wrong.Cost*4)

	// (b) Instrumentation: per-node tuple counters, in stable label
	// order so two runs print identically.
	nodes := make([]*plan.Node, 0, len(res.Stats))
	for node := range res.Stats {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].Op.String()+"/"+nodes[i].Relation < nodes[j].Op.String()+"/"+nodes[j].Relation
	})
	for _, node := range nodes {
		st := res.Stats[node]
		fmt.Printf("  %-30s in=%-7d out=%-7d matches=%-7d done=%v\n",
			node.Op.String()+"/"+node.Relation, st.InTuples, st.Out, st.Matches, st.Done)
	}

	// (c) Spilled execution: drive only the error node of the first
	// error-prone join, spending the whole budget on learning it.
	errPred := rw.Query.ErrorDims()[0]
	spill := eng.MustRun(wrong.Plan, exec.Options{Budget: wrong.Cost * 4, Spill: true, SpillPred: errPred})
	fmt.Printf("\nspilled run on predicate %d: completed=%v rows=%d\n",
		errPred, spill.Completed, spill.RowsOut)

	// Full concrete bouquet run: selectivities discovered, never
	// estimated.
	bouquet, err := core.Compile(opt, rw.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda})
	if err != nil {
		log.Fatal(err)
	}
	runner := &core.ConcreteRunner{B: bouquet, Engine: eng}
	out := runner.RunOptimized()
	fmt.Printf("\noptimized bouquet execution (discovered q_run=%v):\n%s", out.Learned, out.Explain())

	oracle := opt.Optimize(rw.Space.Sels(rw.Actual))
	oracleRun := eng.MustRun(oracle.Plan, exec.Options{})
	fmt.Printf("oracle plan cost %.4g → bouquet sub-optimality %.2f\n",
		oracleRun.CostUsed, out.TotalCost/oracleRun.CostUsed)
}
