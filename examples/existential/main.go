// Existential: the paper's §2 exception case, handled the way the paper
// prescribes. Queries with NOT EXISTS operators make plan costs *decrease*
// in the underlying match selectivity — breaking the Plan Cost Monotonicity
// the bouquet needs. The remedy is the (1−s) axis flip: parameterise the
// error dimension by the *surviving* fraction of outer rows, restoring
// monotonicity. This example builds such a query from its SQL text, shows
// PCM holding on the flipped axis, and runs the bouquet across the
// existential dimension — including on real rows, where the pass fraction
// is discovered from tuple counters.
//
//	go run ./examples/existential
package main

import (
	"fmt"
	"log"

	"repro/internal/anorexic"
	"repro/internal/catalog"
	"repro/internal/contour"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/ess"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/posp"
	"repro/internal/sqlparse"
)

func main() {
	cat := catalog.TPCHLike(0.02)

	// Orders whose line items reference no indexed part: a NOT EXISTS
	// whose pass fraction is error-prone. Written as text, parsed into
	// the query model.
	q, err := sqlparse.Parse("existential", cat, `
		SELECT * FROM orders, lineitem, part
		WHERE orders.o_orderkey = lineitem.l_orderkey
		  AND NOT EXISTS (lineitem.l_partkey = part.p_partkey) sel(0.3)?`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)

	space, err := ess.NewSpace(q, []int{40})
	if err != nil {
		log.Fatal(err)
	}
	opt := optimizer.New(cost.NewCoster(q, cost.Postgres()))

	// PCM survives the axis flip: the optimal-cost curve over the pass
	// fraction is monotone, so contours and guarantees work unchanged.
	diagram := posp.Generate(opt, space, 0)
	if err := contour.CheckPCM(diagram); err != nil {
		log.Fatalf("PCM violated despite the axis flip: %v", err)
	}
	cmin, cmax := diagram.CostBounds()
	fmt.Printf("PCM holds on the pass-fraction axis: Cmin=%.4g → Cmax=%.4g (monotone)\n", cmin, cmax)

	bouquet, err := core.Compile(opt, space, core.CompileOptions{Lambda: anorexic.DefaultLambda, Diagram: diagram})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — guaranteed MSO %.1f\n\n", bouquet, bouquet.BoundMSO())

	for _, qa := range []ess.Point{{0.002}, {0.4}} {
		e := bouquet.RunBasic(qa)
		fmt.Printf("pass fraction %v: %s\n", qa, e)
	}

	// And on real rows: a small instance where ~40%% of customers are
	// "blocked"; the engine discovers the surviving fraction from its
	// anti-join pass counters.
	rcat := catalog.NewCatalog()
	rcat.AddRelation(&catalog.Relation{
		Name: "orders", Card: 4000, TupleWidth: 24,
		Columns: []catalog.Column{
			{Name: "o_id", Type: catalog.TypeKey, DistinctCount: 4000},
			{Name: "o_cust", Type: catalog.TypeInt, DistinctCount: 500},
		},
	})
	rcat.AddRelation(&catalog.Relation{
		Name: "blocked", Card: 260, TupleWidth: 16,
		Columns: []catalog.Column{{Name: "b_cust", Type: catalog.TypeInt, DistinctCount: 500}},
	})
	rcat.IndexAllColumns()
	db := data.Generate(rcat, nil, nil, 11)

	rq, err := sqlparse.Parse("blockedOrders", rcat, `
		SELECT * FROM orders, blocked
		WHERE NOT EXISTS (orders.o_cust = blocked.b_cust) sel(0.5)?`)
	if err != nil {
		log.Fatal(err)
	}
	rspace, err := ess.NewSpaceWithDims(rq, []ess.Dim{{PredID: 0, Lo: 0.01, Hi: 1, Res: 20}})
	if err != nil {
		log.Fatal(err)
	}
	ropt := optimizer.New(cost.NewCoster(rq, cost.Postgres()))
	rb, err := core.Compile(ropt, rspace, core.CompileOptions{Lambda: anorexic.DefaultLambda})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := exec.NewEngine(rq, db, cost.Postgres(), nil)
	if err != nil {
		log.Fatal(err)
	}
	runner := &core.ConcreteRunner{B: rb, Engine: eng}
	out := runner.RunOptimized()
	fmt.Printf("\nconcrete NOT EXISTS run: %d surviving orders discovered (learned pass fraction %v)\n%s",
		out.ResultRows, out.Learned, out.Explain())
}
