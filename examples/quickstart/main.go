// Quickstart: compile a plan bouquet for the paper's example query EQ and
// execute it without ever estimating the error-prone selectivity.
//
// The program walks the full pipeline: query definition over a TPC-H-shaped
// catalog, POSP generation across the 1-D error space, isocost
// discretization, anorexic reduction, and finally two bouquet runs — one at
// a low-selectivity location, one at a high one — showing the calibrated
// sequence of cost-limited executions discovering q_a each time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/anorexic"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/query"
)

func main() {
	// 1. A TPC-H-shaped catalog and the example query EQ (Figure 1):
	// orders of cheap parts, with the price selectivity error-prone.
	cat := catalog.TPCHLike(1.0)
	q, err := query.NewBuilder("EQ", cat).
		Relation("part").Relation("lineitem").Relation("orders").
		SelectionPred("part", "p_retailprice", 0.10, true). // error-prone!
		JoinPred("part", "p_partkey", "lineitem", "l_partkey", query.PKFKSel(cat, "part"), false).
		JoinPred("lineitem", "l_orderkey", "orders", "o_orderkey", query.PKFKSel(cat, "orders"), false).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)

	// 2. The 1-D error-prone selectivity space, log-gridded.
	space, err := ess.NewSpace(q, []int{80})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compile the bouquet: POSP → PIC → isocost ladder → anorexic
	// reduction (λ = 20%) → bouquet plan set.
	opt := optimizer.New(cost.NewCoster(q, cost.Postgres()))
	bouquet, err := core.Compile(opt, space, core.CompileOptions{Lambda: anorexic.DefaultLambda})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bouquet)
	fmt.Printf("guaranteed MSO (Eq. 8): %.1f — no matter how wrong any estimate would have been\n\n",
		bouquet.BoundMSO())

	// 4. Run at two very different actual selectivities. The execution
	// sequence is identical on every invocation (repeatability).
	for _, qa := range []ess.Point{{0.0005}, {0.05}} {
		e := bouquet.RunBasic(qa)
		fmt.Printf("actual selectivity %v:\n  %s\n", qa, e)
		eo := bouquet.RunOptimized(qa)
		fmt.Printf("  optimized: %s\n\n", eo)
	}
}
