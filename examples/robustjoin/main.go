// Robustjoin: the motivating OLAP scenario — a five-way decision-support
// join whose three join selectivities the optimizer habitually
// mis-estimates. The example constructs the adversarial (q_e, q_a) pair
// that maximises the native optimizer's sub-optimality, then shows the
// bouquet executing the *same* query instance with single-digit
// sub-optimality, estimate-free.
//
//	go run ./examples/robustjoin
package main

import (
	"fmt"
	"log"

	"repro/internal/anorexic"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/posp"
	"repro/internal/workload"
)

func main() {
	// 3D_H_Q5: chain(6) over the TPC-H shape, three error-prone join
	// selectivities (paper Table 2). A 10-point grid keeps this demo
	// interactive; the benchmarks use the full resolution.
	w := workload.HQ5(10)
	coster := cost.NewCoster(w.Query, w.Model)
	opt := optimizer.New(coster)
	fmt.Println("query:", w.Query)

	bouquet, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bouquet)

	// The native optimizer's exposure: cost every POSP plan everywhere
	// and find the worst (estimate, actual) combination.
	diagram := bouquet.Diagram
	matrix := posp.CostMatrix(diagram, coster, 0)
	nat, err := metrics.Compute(diagram, matrix, metrics.NativeAssignment(diagram))
	if err != nil {
		log.Fatal(err)
	}
	qe := w.Space.PointAt(nat.MSOAtQe)
	qa := w.Space.PointAt(nat.MSOAtQa)
	fmt.Printf("\nnative optimizer worst case: estimate %v → actual %v\n", qe, qa)
	fmt.Printf("  plan chosen at q_e costs %.0fx the optimal at q_a (MSO=%.0f, ASO=%.2f)\n",
		nat.MSO, nat.MSO, nat.ASO)

	// The bouquet at the same adversarial actual location: the estimate
	// is a don't-care, so there is nothing the adversary can corrupt.
	e := bouquet.RunBasic(qa)
	fmt.Printf("\nbouquet at the same q_a (no estimate consulted):\n  %s\n", e)
	fmt.Printf("  %d partial executions, total sub-optimality %.2f (bound %.1f)\n",
		e.NumExecs(), e.SubOpt(), bouquet.BoundMSO())

	eo := bouquet.RunOptimized(qa)
	fmt.Printf("\noptimized bouquet (spill-based selectivity discovery):\n  %s\n", eo)
}
