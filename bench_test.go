// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Each benchmark prints its experiment's table once (so a plain
// `go test -bench=. -benchmem` run reproduces the full evaluation) and
// times the experiment's characteristic operation in its b.N loop.
//
// Grid resolutions follow ess.DefaultResolution (1-D: 100, 2-D: 30,
// 3-D: 16, 4-D: 10, 5-D: 7); EXPERIMENTS.md records the resulting
// paper-vs-measured comparison.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/anorexic"
	"repro/internal/contour"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/posp"
	"repro/internal/report"
	"repro/internal/workload"
)

// sharedEvals runs the full ten-workload evaluation exactly once per test
// binary; Figures 14–18 and Tables 1–2 all render from it.
var (
	evalOnce sync.Once
	evals    []*report.Eval
	evalErr  error
)

func sharedEvalsFor(b *testing.B) []*report.Eval {
	b.Helper()
	evalOnce.Do(func() {
		evals, evalErr = report.EvaluateAll(report.Options{Lambda: anorexic.DefaultLambda})
	})
	if evalErr != nil {
		b.Fatal(evalErr)
	}
	return evals
}

var printOnce sync.Map

// printTable emits a table exactly once per benchmark name.
func printTable(b *testing.B, t fmt.Stringer) {
	if _, dup := printOnce.LoadOrStore(b.Name(), true); !dup {
		fmt.Println()
		fmt.Println(t)
	}
}

// BenchmarkFigure3_PIC1D regenerates the 1-D POSP/PIC/isocost construction
// of Figures 2–3 and times POSP generation over the EQ error space.
func BenchmarkFigure3_PIC1D(b *testing.B) {
	t, err := report.Figure3(0)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, t)

	w := workload.EQ(0)
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		posp.Generate(opt, w.Space, 0)
	}
}

// BenchmarkFigure4_Bouquet1D regenerates the 1-D bouquet performance
// profile of Figure 4 and times one full-grid basic-driver sweep.
func BenchmarkFigure4_Bouquet1D(b *testing.B) {
	series, summary, err := report.Figure4(0)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, series)
	if _, dup := printOnce.LoadOrStore(b.Name()+"/summary", true); !dup {
		fmt.Println(summary)
	}

	w := workload.EQ(0)
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	bq, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda})
	if err != nil {
		b.Fatal(err)
	}
	n := w.Space.NumPoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ComputeBouquet(n, func(f int) (float64, int) {
			e := bq.RunBasic(w.Space.PointAt(f))
			return e.SubOpt(), e.NumExecs()
		}, 0)
	}
}

// BenchmarkTheorem1_RSweep sweeps the isocost ratio r and checks the
// measured 1-D MSO against Theorem 1's r²/(r−1) guarantee, confirming the
// paper's claim that r = 2 is the ideal discretization.
func BenchmarkTheorem1_RSweep(b *testing.B) {
	w := workload.EQ(0)
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	diagram := posp.Generate(opt, w.Space, 0)

	t := &report.Table{
		Caption: "Theorem 1: measured 1-D MSO versus the r²/(r−1) guarantee",
		Header:  []string{"r", "guarantee r²/(r−1)", "measured MSO", "within"},
		Notes:   []string{"paper: the guarantee is minimised at r = 2 (value 4), optimal for any deterministic algorithm (Theorem 2)"},
	}
	for _, r := range []float64{1.4142, 2, 3, 4} {
		bq, err := core.Compile(opt, w.Space, core.CompileOptions{Ratio: cost.Ratio(r), Lambda: -1, Diagram: diagram})
		if err != nil {
			b.Fatal(err)
		}
		st := metrics.ComputeBouquet(w.Space.NumPoints(), func(f int) (float64, int) {
			e := bq.RunBasic(w.Space.PointAt(f))
			return e.SubOpt(), e.NumExecs()
		}, 0)
		guarantee := r * r / (r - 1)
		t.AddRow(r, guarantee, st.MSO, st.MSO <= guarantee*(1+1e-9))
	}
	printTable(b, t)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: -1, Diagram: diagram}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_Bounds regenerates Table 1 (POSP versus anorexic MSO
// guarantees) and times one bouquet compilation from a cached diagram.
func BenchmarkTable1_Bounds(b *testing.B) {
	evs := sharedEvalsFor(b)
	printTable(b, report.Table1(evs))

	d := evs[0].Bouquet.Diagram
	w := evs[0].Workload
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda, Diagram: d}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_Workloads regenerates Table 2 (workload specifications
// with measured cost gradients) and times corner-cost probing.
func BenchmarkTable2_Workloads(b *testing.B) {
	evs := sharedEvalsFor(b)
	printTable(b, report.Table2(evs))

	w := evs[0].Workload
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contour.LadderForSpace(opt, w.Space, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure14_MSO regenerates the MSO comparison and times the NAT
// metric computation it is built on.
func BenchmarkFigure14_MSO(b *testing.B) {
	evs := sharedEvalsFor(b)
	printTable(b, report.Figure14(evs))
	benchNatMetrics(b, evs[0])
}

// BenchmarkFigure15_ASO regenerates the ASO comparison.
func BenchmarkFigure15_ASO(b *testing.B) {
	evs := sharedEvalsFor(b)
	printTable(b, report.Figure15(evs))
	benchNatMetrics(b, evs[0])
}

func benchNatMetrics(b *testing.B, ev *report.Eval) {
	coster := cost.NewCoster(ev.Workload.Query, ev.Workload.Model)
	d := ev.Bouquet.Diagram
	matrix := posp.CostMatrix(d, coster, 0)
	assign := metrics.NativeAssignment(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Compute(d, matrix, assign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure16_Distribution regenerates the 5D_DS_Q19 robustness
// distribution and times the bucketing.
func BenchmarkFigure16_Distribution(b *testing.B) {
	evs := sharedEvalsFor(b)
	var target *report.Eval
	for _, ev := range evs {
		if ev.Workload.Name == "5D_DS_Q19" {
			target = ev
		}
	}
	if target == nil {
		b.Fatal("5D_DS_Q19 missing from evaluation set")
	}
	printTable(b, report.Figure16(target))

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ImprovementDistribution(target.Nat.WorstPerQa, target.Basic.SubOptPerQa)
	}
}

// BenchmarkFigure17_MaxHarm regenerates the MaxHarm comparison.
func BenchmarkFigure17_MaxHarm(b *testing.B) {
	evs := sharedEvalsFor(b)
	printTable(b, report.Figure17(evs))

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.MaxHarm(evs[0].Basic.SubOptPerQa, evs[0].Nat.WorstPerQa)
	}
}

// BenchmarkFigure18_Cardinalities regenerates the plan-cardinality
// comparison and times one basic bouquet run at the space terminus (the
// most expensive single query location).
func BenchmarkFigure18_Cardinalities(b *testing.B) {
	evs := sharedEvalsFor(b)
	printTable(b, report.Figure18(evs))

	bq := evs[0].Bouquet
	qa := evs[0].Workload.Space.Terminus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bq.RunBasic(qa)
	}
}

// BenchmarkTable3_Execution regenerates the 2D_H_Q8a real-execution
// experiment and times one concrete basic bouquet run over the generated
// tables.
func BenchmarkTable3_Execution(b *testing.B) {
	breakdown, summary, err := report.Table3(42)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, breakdown)
	if _, dup := printOnce.LoadOrStore(b.Name()+"/summary", true); !dup {
		fmt.Println(summary)
	}

	rw, err := workload.HQ8a(42)
	if err != nil {
		b.Fatal(err)
	}
	opt := optimizer.New(cost.NewCoster(rw.Query, rw.Model))
	bq, err := core.Compile(opt, rw.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := exec.NewEngine(rw.Query, rw.DB, rw.Model, rw.Bindings)
	if err != nil {
		b.Fatal(err)
	}
	runner := &core.ConcreteRunner{B: bq, Engine: eng}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := runner.RunBasic()
		if !out.Completed {
			b.Fatal("bouquet run did not complete")
		}
	}
}

// BenchmarkFigure19_Commercial regenerates the commercial-engine
// evaluation and times one optimization under the commercial cost model.
func BenchmarkFigure19_Commercial(b *testing.B) {
	tables, err := report.Figure19(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i, t := range tables {
		if _, dup := printOnce.LoadOrStore(fmt.Sprintf("%s/%d", b.Name(), i), true); !dup {
			fmt.Println()
			fmt.Println(t)
		}
	}

	w, err := workload.ByName("3D_H_Q5b", 0)
	if err != nil {
		b.Fatal(err)
	}
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	sels := w.Space.Sels(w.Space.Terminus())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Optimize(sels)
	}
}

// BenchmarkCompileOverheads regenerates the §6.1 contour-focused versus
// exhaustive POSP comparison and times one focused generation.
func BenchmarkCompileOverheads(b *testing.B) {
	t, err := report.CompileOverheads(0)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, t)

	w := workload.HQ5(0)
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	ladder, err := contour.LadderForSpace(opt, w.Space, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contour.Focused(opt, w.Space, ladder)
	}
}

// BenchmarkModelingError_Delta regenerates the §3.4 bounded-modeling-error
// experiment (δ = 0.4, the TPC-H average of Wu et al. [24]).
func BenchmarkModelingError_Delta(b *testing.B) {
	t, err := report.ModelingError(workload.EQ(0), 0.4, []uint64{1, 2, 3}, 0)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, t)

	w := workload.EQ(0)
	coster := cost.NewCoster(w.Query, w.Model)
	opt := optimizer.New(coster)
	bq, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda})
	if err != nil {
		b.Fatal(err)
	}
	bq.SetActualCoster(coster.WithPerturbation(0.4, 1))
	qa := w.Space.Terminus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bq.RunBasic(qa)
	}
}

// BenchmarkAblationLambda sweeps the anorexic threshold (§3.3's trade-off):
// larger λ shrinks ρ and the bouquet but inflates every budget by (1+λ).
func BenchmarkAblationLambda(b *testing.B) {
	w := workload.DSQ96(0)
	t, err := report.AblationLambda(w, []float64{-1, 0, 0.1, 0.2, 0.5, 1.0}, 0)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, t)

	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	d := posp.Generate(opt, w.Space, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: 0.2, Diagram: d}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationResolution sweeps the ESS grid resolution: the compiled
// guarantee stabilises once the grid resolves the plan-switch structure.
func BenchmarkAblationResolution(b *testing.B) {
	t, err := report.AblationResolution("3D_DS_Q96", []int{4, 8, 12, 16}, 0)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, t)

	w, err := workload.ByName("3D_DS_Q96", 8)
	if err != nil {
		b.Fatal(err)
	}
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		posp.Generate(opt, w.Space, 0)
	}
}

// BenchmarkAblationRatio sweeps the isocost ratio on EQ (Theorem 2: r = 2
// is ideal), with the anorexic reduction active.
func BenchmarkAblationRatio(b *testing.B) {
	w := workload.EQ(0)
	t, err := report.AblationRatio(w, []float64{1.3, 1.5, 2, 2.5, 3, 4}, 0)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, t)

	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	d := posp.Generate(opt, w.Space, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(opt, w.Space, core.CompileOptions{Ratio: 3, Lambda: 0.2, Diagram: d}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFocusedScaling shows the contour-focused generator's savings
// growing with resolution (the band is a (D−1)-surface).
func BenchmarkFocusedScaling(b *testing.B) {
	t, err := report.FocusedScaling([]int{10, 20, 40, 80})
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, t)

	w := workload.EQ2D(40)
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	ladder, err := contour.LadderForSpace(opt, w.Space, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contour.Focused(opt, w.Space, ladder)
	}
}

// BenchmarkFocusedCompile times the §4.2 production compile path (contour
// band only) against the exhaustive-grid compile on a 2-D space, printing
// the optimizer-call savings.
func BenchmarkFocusedCompile(b *testing.B) {
	w := workload.EQ2D(40)
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))

	opt.ResetCalls()
	bqF, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda, Focused: true})
	if err != nil {
		b.Fatal(err)
	}
	focusedCalls := opt.Calls()
	opt.ResetCalls()
	bqD, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda})
	if err != nil {
		b.Fatal(err)
	}
	denseCalls := opt.Calls()
	t := &report.Table{
		Caption: "Focused versus exhaustive bouquet compilation (EQ2D, res 40)",
		Header:  []string{"mode", "optimizer calls", "ρ", "Eq.8 bound"},
	}
	t.AddRow("focused band (§4.2)", focusedCalls, bqF.MaxDensity(), bqF.BoundMSO())
	t.AddRow("exhaustive grid", denseCalls, bqD.MaxDensity(), bqD.BoundMSO())
	printTable(b, t)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: anorexic.DefaultLambda, Focused: true}); err != nil {
			b.Fatal(err)
		}
	}
}
