package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// freeAddr reserves a loopback port and releases it for the server under
// test to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server on %s never became healthy", addr)
}

// TestGracefulShutdown boots the real server loop, puts a compile request
// in flight, delivers SIGTERM to the process, and checks that (a) the
// in-flight request completes successfully during the drain and (b) run
// returns nil — i.e. the process would exit 0.
func TestGracefulShutdown(t *testing.T) {
	addr := freeAddr(t)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(addr, "tpch", 0.05, server.Config{CacheSize: 4},
			5*time.Second, time.Minute, time.Minute, 15*time.Second)
	}()
	waitReady(t, addr)

	inflight := make(chan error, 1)
	go func() {
		body := []byte(`{"sql":"SELECT * FROM part, lineitem WHERE part.p_retailprice < sel(0.1)? AND part.p_partkey = lineitem.l_partkey sel(0.000005)?","res":16}`)
		resp, err := http.Post("http://"+addr+"/compile", "application/json", bytes.NewReader(body))
		if err == nil {
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight compile status %d: %s", resp.StatusCode, buf.String())
			}
		}
		inflight <- err
	}()

	// Let the compile reach the server, then ask the process to stop.
	time.Sleep(20 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v, want nil (exit 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}

	// The listener is really gone.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

// TestUnknownCatalog checks run rejects a bad -catalog value instead of
// serving nothing.
func TestUnknownCatalog(t *testing.T) {
	if err := run(freeAddr(t), "nope", 1, server.Config{}, time.Second, time.Second, time.Second, time.Second); err == nil {
		t.Fatal("unknown catalog accepted")
	}
}
