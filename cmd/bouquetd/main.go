// Command bouquetd serves the plan-bouquet library over HTTP (see
// internal/server for the API and API.md for the endpoint reference):
// compile bouquets from SQL text, execute traced runs, inspect contours,
// export artifacts, render plan diagrams, and observe it all via
// /metrics and /healthz.
//
//	bouquetd -addr :8080 -catalog tpch -sf 1.0
//
//	curl -s localhost:8080/compile -d '{"sql":"SELECT * FROM part, lineitem
//	  WHERE part.p_retailprice < sel(0.1)?
//	  AND part.p_partkey = lineitem.l_partkey"}'
//	curl -s localhost:8080/run -d '{"id":"b1","qa":[0.05]}'
//	curl -s localhost:8080/metrics
//
// The process is production-shaped: the http.Server carries read/write
// timeouts, each /compile runs under a deadline that cancels the
// compilation cooperatively, repeated compiles are served from a bounded
// LRU cache, and SIGTERM/SIGINT drain in-flight requests before exiting 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	schema := flag.String("catalog", "tpch", "catalog shape: tpch or tpcds")
	sf := flag.Float64("sf", 1.0, "catalog scale factor")
	cacheSize := flag.Int("cache-size", server.DefaultCacheSize, "compile cache capacity (LRU entries)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body limit in bytes")
	compileTimeout := flag.Duration("compile-timeout", time.Minute, "per-request compile deadline (0 = none)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server read timeout")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "http.Server write timeout (must exceed compile-timeout)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server keep-alive idle timeout")
	grace := flag.Duration("shutdown-grace", 30*time.Second, "drain window for in-flight requests on SIGTERM")
	execWorkers := flag.Int("exec-workers", 0, "default worker count for concrete /run executions (0 = tuple-at-a-time engine, n>0 = vectorized with n morsel workers)")
	execReuse := flag.Bool("exec-reuse", true, "salvage completed operator state (hash builds, sorted runs) across the steps of a concrete /run (per-request \"reuse\" overrides)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	runHistory := flag.Int("run-history", server.DefaultRunHistory, "traced runs retained for /runs/{id}/trace")
	flag.Parse()

	if err := run(*addr, *schema, *sf, server.Config{
		CacheSize:      *cacheSize,
		MaxBodyBytes:   *maxBody,
		CompileTimeout: *compileTimeout,
		ExecWorkers:    *execWorkers,
		ExecReuse:      *execReuse,
		EnablePprof:    *enablePprof,
		RunHistory:     *runHistory,
		Logf:           log.Printf,
	}, *readTimeout, *writeTimeout, *idleTimeout, *grace); err != nil {
		log.Fatalf("bouquetd: %v", err)
	}
}

// run builds the catalog and server, serves until a termination signal or
// listener error, then drains in-flight requests. A nil return means a
// clean shutdown (the process exits 0).
func run(addr, schema string, sf float64, cfg server.Config, readTimeout, writeTimeout, idleTimeout, grace time.Duration) error {
	var cat *catalog.Catalog
	switch schema {
	case "tpch":
		cat = catalog.TPCHLike(catalog.ScaleFactor(sf))
	case "tpcds":
		cat = catalog.TPCDSLike(catalog.ScaleFactor(sf))
	default:
		return fmt.Errorf("unknown catalog %q (tpch or tpcds)", schema)
	}

	srv := server.NewWithConfig(cat, cfg)
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadTimeout:       readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	//bouquet:allow goleak: the one-slot buffer lets the send complete; the drain-incomplete path exits the process without collecting the listener's error
	go func() {
		fmt.Printf("bouquetd: serving %s-shaped catalog on %s\n", schema, addr)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err // ListenAndServe never returns nil
	case <-ctx.Done():
		stop() // restore default signal behaviour: a second signal kills hard
		log.Printf("bouquetd: shutdown signal received, draining for up to %s", grace)
		drainCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := hs.Shutdown(drainCtx); err != nil {
			hs.Close()
			return fmt.Errorf("drain incomplete: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("bouquetd: drained, exiting")
		return nil
	}
}
