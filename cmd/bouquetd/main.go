// Command bouquetd serves the plan-bouquet library over HTTP (see
// internal/server for the API): compile bouquets from SQL text, execute
// traced runs, inspect contours, export artifacts, render plan diagrams.
//
//	bouquetd -addr :8080 -catalog tpch -sf 1.0
//
//	curl -s localhost:8080/compile -d '{"sql":"SELECT * FROM part, lineitem
//	  WHERE part.p_retailprice < sel(0.1)?
//	  AND part.p_partkey = lineitem.l_partkey"}'
//	curl -s localhost:8080/run -d '{"id":"b1","qa":[0.05]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/catalog"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	schema := flag.String("catalog", "tpch", "catalog shape: tpch or tpcds")
	sf := flag.Float64("sf", 1.0, "catalog scale factor")
	flag.Parse()

	var cat *catalog.Catalog
	switch *schema {
	case "tpch":
		cat = catalog.TPCHLike(catalog.ScaleFactor(*sf))
	case "tpcds":
		cat = catalog.TPCDSLike(catalog.ScaleFactor(*sf))
	default:
		log.Fatalf("bouquetd: unknown catalog %q (tpch or tpcds)", *schema)
	}

	srv := server.New(cat)
	fmt.Printf("bouquetd: serving %s-shaped catalog on %s\n", *schema, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
