package main

import "testing"

// Dual-mode acceptance for the escape-analysis pair: allocbound and
// maporder must fire through both the direct driver and the
// `go vet -vettool` unitchecker protocol, since CI runs one and
// developers often run the other.

// TestAllocboundDualMode: a //bouquet:allocfree function that appends
// must be reported in both modes.
func TestAllocboundDualMode(t *testing.T) {
	dualMode(t, `package a

//bouquet:allocfree
func grow(xs []int, v int) []int {
	return append(xs, v)
}
`, "append may grow its backing array on the //bouquet:allocfree path of vetfixture.grow")
}

// TestAllocboundCalleeDualMode: the violation may live in an in-package
// callee; the diagnostic must name it.
func TestAllocboundCalleeDualMode(t *testing.T) {
	dualMode(t, `package a

//bouquet:allocfree
func hot(n int) int { return len(scratch(n)) }

func scratch(n int) []byte { return make([]byte, n) }
`, "(in vetfixture.scratch)")
}

// TestMaporderDualMode: map iteration appended to an output slice with
// no later sort must be reported in both modes.
func TestMaporderDualMode(t *testing.T) {
	dualMode(t, `package a

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`, "map iteration order reaches ordered output")
}
