package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/registry"
)

// SARIF 2.1.0 output for GitHub code scanning. Only the subset the
// upload API reads is emitted: one run, the driver's rule table, and one
// result per finding with a physical location. Paths are repository-
// relative with forward slashes — the uploader resolves them against the
// checkout root, so absolute or OS-specific paths would break
// annotation placement.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifRules builds the driver's rule table: every registered analyzer
// plus allowformat, the framework's own reporter for malformed
// //bouquet:allow directives. The first Doc line is the short
// description; ids are returned in table order for ruleIndex lookup.
func sarifRules() ([]sarifRule, map[string]int) {
	rules := []sarifRule{{
		ID:               "allowformat",
		ShortDescription: sarifMessage{Text: "report //bouquet:allow directives without a mandatory reason"},
	}}
	for _, az := range registry.All() {
		doc := az.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: az.Name, ShortDescription: sarifMessage{Text: doc}})
	}
	index := make(map[string]int, len(rules))
	for i, r := range rules {
		index[r.ID] = i
	}
	return rules, index
}

// relPath makes a diagnostic path repository-relative with forward
// slashes; paths outside the working tree pass through unchanged (still
// slash-normalized) rather than sprouting ../ chains.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return filepath.ToSlash(name)
}

// printSARIF writes the findings as one SARIF run on stdout. Unknown
// analyzer names (none today) get ruleIndex -1 rather than a panic so a
// future analyzer missing from the registry degrades to an un-indexed
// result instead of losing the upload.
func printSARIF(diags []analysis.Diagnostic) error {
	root, err := os.Getwd()
	if err != nil {
		root = "."
	}
	rules, index := sarifRules()
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		ri, ok := index[d.Analyzer]
		if !ok {
			ri = -1
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ri,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(root, d.Pos.Filename), URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "bouquetvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
