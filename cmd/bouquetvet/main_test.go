package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// repoRoot locates the module root from this file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// buildVet compiles the bouquetvet binary into a temp dir and returns its
// path.
func buildVet(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	bin := filepath.Join(t.TempDir(), "bouquetvet")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/bouquetvet")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDirectModeRepoIsClean is the acceptance smoke test: the shipped
// suite produces zero findings over the repository itself.
func TestDirectModeRepoIsClean(t *testing.T) {
	bin := buildVet(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("bouquetvet ./... failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("bouquetvet ./... produced findings:\n%s", stdout.String())
	}
}

// TestVettoolCleanRepo drives bouquetvet through the real `go vet
// -vettool` unitchecker protocol over repository packages and expects a
// clean exit.
func TestVettoolCleanRepo(t *testing.T) {
	bin := buildVet(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/floats", "./internal/ess", "./internal/core")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestVettoolReportsFindings verifies the protocol end to end in the
// failing direction: a scratch module with a floatcmp violation must make
// `go vet -vettool` exit non-zero and print the diagnostic.
func TestVettoolReportsFindings(t *testing.T) {
	bin := buildVet(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module vetfixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package a

func equal(x, y float64) bool {
	return x == y
}

func suppressed(x float64) bool {
	return x == 0 //bouquet:allow floatcmp: sentinel
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on a package with a floatcmp violation\n%s", out)
	}
	if !strings.Contains(string(out), "exact == on float operands") {
		t.Fatalf("go vet -vettool output missing the floatcmp diagnostic:\n%s", out)
	}
	if strings.Count(string(out), "exact == on float operands") != 1 {
		t.Fatalf("expected exactly one finding (the second compare is suppressed):\n%s", out)
	}
}

// TestUnitflowDualMode is the unitflow acceptance test: a scratch module
// that launders a Card through a plain float64 and passes it into a Sel
// parameter must be reported in both entry modes — the direct driver and
// the `go vet -vettool` unitchecker protocol.
func TestUnitflowDualMode(t *testing.T) {
	bin := buildVet(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module vetfixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package a

type Sel float64
type Card float64

func (s Sel) F() float64  { return float64(s) }
func (c Card) F() float64 { return float64(c) }

func takeSel(s Sel) Sel { return s }

func confused(rows Card) Sel {
	raw := float64(rows)
	return takeSel(Sel(raw))
}
`)
	const want = "Card-derived value passed as Sel argument to takeSel"

	direct := exec.Command(bin, "./...")
	direct.Dir = dir
	out, err := direct.CombinedOutput()
	if err == nil {
		t.Fatalf("direct mode exited 0 on the unit-confused fixture\n%s", out)
	}
	if !strings.Contains(string(out), want) {
		t.Fatalf("direct mode output missing unitflow diagnostic %q:\n%s", want, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dir
	out, err = vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on the unit-confused fixture\n%s", out)
	}
	if !strings.Contains(string(out), want) {
		t.Fatalf("vettool output missing unitflow diagnostic %q:\n%s", want, out)
	}
}

// TestOutputSortedAndStable pins the cross-analyzer reporting contract:
// findings from different analyzers arrive interleaved in file-position
// order, and two runs over the same input produce byte-identical output.
func TestOutputSortedAndStable(t *testing.T) {
	bin := buildVet(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module vetfixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package a

import (
	"errors"
	"math"
)

type Sel float64
type Card float64

func takeSel(s Sel) Sel { return s }

func mayFail() error { return errors.New("boom") }

func eq(x, y float64) bool { return x == y }

func sentinel() float64 {
	v := math.Inf(1)
	return v * 2
}

func confused(rows Card) Sel {
	raw := float64(rows)
	return takeSel(Sel(raw))
}

func drop() {
	_ = mayFail()
}
`)
	run := func() string {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = dir
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		if err := cmd.Run(); err == nil {
			t.Fatalf("bouquetvet exited 0 on a fixture with known findings\n%s", stdout.String())
		}
		return stdout.String()
	}
	first := run()
	if second := run(); second != first {
		t.Fatalf("output differs across runs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}

	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) < 4 {
		t.Fatalf("expected findings from several analyzers, got %d line(s):\n%s", len(lines), first)
	}
	analyzers := map[string]bool{}
	prevLine, prevCol := 0, 0
	for _, line := range lines {
		// path:line:col: message [analyzer]
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			t.Fatalf("malformed diagnostic line %q", line)
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatalf("bad line number in %q: %v", line, err)
		}
		col, err := strconv.Atoi(parts[2])
		if err != nil {
			t.Fatalf("bad column in %q: %v", line, err)
		}
		if ln < prevLine || (ln == prevLine && col < prevCol) {
			t.Fatalf("diagnostics not sorted by position: %q after %d:%d\nfull output:\n%s", line, prevLine, prevCol, first)
		}
		prevLine, prevCol = ln, col
		open := strings.LastIndex(line, "[")
		if open < 0 || !strings.HasSuffix(line, "]") {
			t.Fatalf("diagnostic line missing [analyzer] suffix: %q", line)
		}
		analyzers[line[open+1:len(line)-1]] = true
	}
	for _, want := range []string{"errflow", "floatcmp", "infguard", "unitflow"} {
		if !analyzers[want] {
			t.Errorf("no %s finding in output (analyzers seen: %v):\n%s", want, analyzers, first)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
