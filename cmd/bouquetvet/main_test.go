package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the module root from this file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// buildVet compiles the bouquetvet binary into a temp dir and returns its
// path.
func buildVet(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	bin := filepath.Join(t.TempDir(), "bouquetvet")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/bouquetvet")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDirectModeRepoIsClean is the acceptance smoke test: the shipped
// suite produces zero findings over the repository itself.
func TestDirectModeRepoIsClean(t *testing.T) {
	bin := buildVet(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("bouquetvet ./... failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("bouquetvet ./... produced findings:\n%s", stdout.String())
	}
}

// TestVettoolCleanRepo drives bouquetvet through the real `go vet
// -vettool` unitchecker protocol over repository packages and expects a
// clean exit.
func TestVettoolCleanRepo(t *testing.T) {
	bin := buildVet(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/floats", "./internal/ess", "./internal/core")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestVettoolReportsFindings verifies the protocol end to end in the
// failing direction: a scratch module with a floatcmp violation must make
// `go vet -vettool` exit non-zero and print the diagnostic.
func TestVettoolReportsFindings(t *testing.T) {
	bin := buildVet(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module vetfixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package a

func equal(x, y float64) bool {
	return x == y
}

func suppressed(x float64) bool {
	return x == 0 //bouquet:allow floatcmp — sentinel
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on a package with a floatcmp violation\n%s", out)
	}
	if !strings.Contains(string(out), "exact == on float operands") {
		t.Fatalf("go vet -vettool output missing the floatcmp diagnostic:\n%s", out)
	}
	if strings.Count(string(out), "exact == on float operands") != 1 {
		t.Fatalf("expected exactly one finding (the second compare is suppressed):\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
