package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSARIFMode pins the code-scanning contract end to end: -sarif on a
// fixture with known findings exits 0, emits valid SARIF 2.1.0, indexes
// every result into the rule table, and uses repository-relative
// forward-slash paths.
func TestSARIFMode(t *testing.T) {
	bin := buildVet(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module vetfixture\n\ngo 1.22\n")
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "sub", "a.go"), `package a

func equal(x, y float64) bool {
	return x == y
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	cmd := exec.Command(bin, "-sarif", "./...")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("-sarif must exit 0 even with findings: %v\nstderr:\n%s", err, stderr.String())
	}

	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "bouquetvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) == 0 {
		t.Fatal("fixture produced no results")
	}
	seen := map[string]bool{}
	for _, r := range run.Results {
		seen[r.RuleID] = true
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result %q has out-of-table ruleIndex %d", r.RuleID, r.RuleIndex)
		} else if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("ruleIndex %d resolves to %q, want %q", r.RuleIndex, got, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %q has %d locations", r.RuleID, len(r.Locations))
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.Contains(uri, "\\") || filepath.IsAbs(uri) || strings.HasPrefix(uri, "..") {
			t.Errorf("URI %q is not a relative forward-slash path", uri)
		}
		if uri != "sub/a.go" {
			t.Errorf("URI = %q, want sub/a.go", uri)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %q has no startLine", r.RuleID)
		}
	}
	for _, want := range []string{"floatcmp", "maporder"} {
		if !seen[want] {
			t.Errorf("no %s result (rules seen: %v)", want, seen)
		}
	}
}

// TestSARIFRuleTable pins that the rule table covers the whole suite
// plus the framework's allowformat reporter, with unique ids.
func TestSARIFRuleTable(t *testing.T) {
	rules, index := sarifRules()
	if len(rules) != len(index) {
		t.Fatalf("duplicate rule ids: %d rules, %d distinct", len(rules), len(index))
	}
	if _, ok := index["allowformat"]; !ok {
		t.Error("rule table missing allowformat")
	}
	for _, want := range []string{"allocbound", "maporder", "floatcmp"} {
		if _, ok := index[want]; !ok {
			t.Errorf("rule table missing %s", want)
		}
	}
	for _, r := range rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no short description", r.ID)
		}
	}
}

// TestTimingInfraRow pins the -timing table shape: the shared
// infrastructure cost is reported on its own "(infra)" row so analyzer
// rows measure only their own work, and the table ends with a total.
func TestTimingInfraRow(t *testing.T) {
	bin := buildVet(t)
	cmd := exec.Command(bin, "-timing", "./internal/floats")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("-timing failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "(infra)") {
		t.Errorf("-timing output missing the (infra) row:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "total") || !strings.Contains(last, "packages)") {
		t.Errorf("-timing output does not end with the total row: %q", last)
	}
}
