package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// dualMode runs one scratch-module fixture through both entry modes —
// the direct driver and the `go vet -vettool` unitchecker protocol —
// and requires the wanted diagnostic (and a non-zero exit) from each.
func dualMode(t *testing.T, src, want string) {
	t.Helper()
	bin := buildVet(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module vetfixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), src)

	direct := exec.Command(bin, "./...")
	direct.Dir = dir
	out, err := direct.CombinedOutput()
	if err == nil {
		t.Fatalf("direct mode exited 0 on the fixture\n%s", out)
	}
	if !strings.Contains(string(out), want) {
		t.Fatalf("direct mode output missing %q:\n%s", want, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dir
	out, err = vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on the fixture\n%s", out)
	}
	if !strings.Contains(string(out), want) {
		t.Fatalf("vettool output missing %q:\n%s", want, out)
	}
}

// TestAtomicmixDualMode: a counter bumped with sync/atomic in one
// function and read plainly in another must be reported in both modes.
func TestAtomicmixDualMode(t *testing.T) {
	dualMode(t, `package a

import "sync/atomic"

var hits int64

func bump() { atomic.AddInt64(&hits, 1) }

func report() int64 { return hits }
`, "hits is accessed with sync/atomic elsewhere in this package")
}

// TestGoleakDualMode: a goroutine sending on a launcher-local channel
// the launcher can abandon on its error path must be reported in both
// modes.
func TestGoleakDualMode(t *testing.T) {
	dualMode(t, `package a

func compute() int { return 1 }

func abandoned(fail bool) int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	if fail {
		return -1
	}
	return <-ch
}
`, "goroutine sends on ch, but the launching function can return without receiving from it")
}

// TestLockheldDualMode: a channel receive while holding a mutex must be
// reported in both modes.
func TestLockheldDualMode(t *testing.T) {
	dualMode(t, `package a

import "sync"

type q struct {
	mu  sync.Mutex
	out chan int
}

func (x *q) wait() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return <-x.out
}
`, "mu may be held across a channel receive")
}

// TestPoollifeDualMode: reading a pooled buffer after returning it to
// the pool must be reported in both modes.
func TestPoollifeDualMode(t *testing.T) {
	dualMode(t, `package a

import (
	"bytes"
	"sync"
)

var bufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func use(data []byte) int {
	buf := bufs.Get().(*bytes.Buffer)
	buf.Write(data)
	bufs.Put(buf)
	return buf.Len()
}
`, "buf is used after being returned to the pool")
}
