// Command bouquetvet runs the repository's domain-invariant analyzers
// (internal/analysis/...) over Go packages. It is the mechanical reviewer
// for the properties the bouquet guarantee rests on but the compiler
// cannot see: epsilon-aware float comparison, selectivity domains,
// context threading, seeded randomness, quiet libraries, and documented
// panics.
//
// Two modes share one binary:
//
//	bouquetvet [packages]
//
// loads the named packages (default ./...) via the go command, analyzes
// them, prints findings, and exits 1 if any are found.
//
//	go vet -vettool=$(which bouquetvet) ./...
//
// runs the same suite under the go command's vet driver: bouquetvet
// implements the vet tool protocol (-V=full version handshake, one
// JSON config file argument per package unit), so findings integrate
// with go vet's caching and output.
//
// Findings are suppressed by an explicit directive on or directly above
// the offending line:
//
//	//bouquet:allow <analyzer>[,<analyzer>...] — reason
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bouquetvet", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet tool protocol)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit (go vet tool protocol)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *flagsFlag {
		// The go command probes `tool -flags` to learn which command-line
		// flags it may forward. The suite has none beyond the protocol's
		// own, so the answer is the empty list.
		fmt.Println("[]")
		return 0
	}

	if *versionFlag != "" {
		// The go command runs `tool -V=full` and hashes the reply into
		// its build cache key; the reply must follow the
		// "<name> version <...>" shape of the standard tools, and a
		// "devel" version must carry a buildID. Hashing the binary
		// itself means cached vet results are invalidated exactly when
		// the analyzer suite changes.
		progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
		h := sha256.New()
		if f, err := os.Open(os.Args[0]); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
		fmt.Printf("%s version devel bouquetvet-suite buildID=%02x\n", progname, h.Sum(nil))
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.RunUnitchecker(registry.All(), rest[0])
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	findings := 0
	for _, p := range pkgs {
		diags, err := analysis.RunPackage(registry.All(), p.Fset, p.Files, p.Pkg, p.Info)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			fmt.Printf("%s\n", d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "bouquetvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
