// Command bouquetvet runs the repository's domain-invariant analyzers
// (internal/analysis/...) over Go packages. It is the mechanical reviewer
// for the properties the bouquet guarantee rests on but the compiler
// cannot see: epsilon-aware float comparison, selectivity domains,
// context threading, seeded randomness, quiet libraries, and documented
// panics.
//
// Two modes share one binary:
//
//	bouquetvet [packages]
//
// loads the named packages (default ./...) via the go command, analyzes
// them, prints findings, and exits 1 if any are found.
//
//	go vet -vettool=$(which bouquetvet) ./...
//
// runs the same suite under the go command's vet driver: bouquetvet
// implements the vet tool protocol (-V=full version handshake, one
// JSON config file argument per package unit), so findings integrate
// with go vet's caching and output.
//
// Findings are suppressed by an explicit directive on or directly above
// the offending line; the reason is mandatory (a reason-less directive
// suppresses nothing and is itself reported as [allowformat]):
//
//	//bouquet:allow <analyzer>[,<analyzer>...]: <reason>
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bouquetvet", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet tool protocol)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit (go vet tool protocol)")
	jsonFlag := fs.Bool("json", false, "emit findings as a JSON array on stdout (direct mode only)")
	sarifFlag := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout and exit 0 (direct mode only; the lint gate is a separate run)")
	timingFlag := fs.Bool("timing", false, "print per-analyzer wall time instead of findings (direct mode only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *flagsFlag {
		// The go command probes `tool -flags` to learn which command-line
		// flags it may forward. The suite has none beyond the protocol's
		// own, so the answer is the empty list.
		fmt.Println("[]")
		return 0
	}

	if *versionFlag != "" {
		// The go command runs `tool -V=full` and hashes the reply into
		// its build cache key; the reply must follow the
		// "<name> version <...>" shape of the standard tools, and a
		// "devel" version must carry a buildID. Hashing the binary
		// itself means cached vet results are invalidated exactly when
		// the analyzer suite changes.
		progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
		h := sha256.New()
		if f, err := os.Open(os.Args[0]); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
		fmt.Printf("%s version devel bouquetvet-suite buildID=%02x\n", progname, h.Sum(nil))
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.RunUnitchecker(registry.All(), rest[0])
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *timingFlag {
		return runTiming(pkgs)
	}

	var all []analysis.Diagnostic
	for _, p := range pkgs {
		diags, err := analysis.RunPackage(registry.All(), p.Fset, p.Files, p.Pkg, p.Info)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		all = append(all, diags...)
	}
	if *sarifFlag {
		// Code-scanning mode: the artifact is the product, findings
		// surface as upload annotations. Exit 0 either way so the upload
		// step runs; the pass/fail lint gate is a separate plain run.
		if err := printSARIF(all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if *jsonFlag {
		printJSON(all)
	} else {
		for _, d := range all {
			fmt.Printf("%s\n", d)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "bouquetvet: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

// diagJSON is the machine-readable finding shape emitted by -json: one
// object per diagnostic, stable field names, positions 1-based.
type diagJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(diags []analysis.Diagnostic) {
	out := make([]diagJSON, 0, len(diags))
	for _, d := range diags {
		out = append(out, diagJSON{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	//bouquet:allow errflow: encoding a slice of plain structs to stdout cannot fail short of a broken pipe
	_ = enc.Encode(out)
}

// runTiming runs each analyzer separately over every loaded package and
// prints cumulative wall time per analyzer, slowest first. It is the
// data source for the lint budget: when `make lint` drifts, the table
// names the analyzer that paid for it.
//
// Shared infrastructure — the per-package call graph and CFGs that the
// interprocedural analyzers all consult — is primed before any analyzer
// runs and reported on its own "(infra)" row. Without that, the whole
// construction cost lands on whichever consumer happens to run first
// and the table blames the wrong analyzer.
func runTiming(pkgs []*analysis.LoadedPackage) int {
	totals := make(map[string]time.Duration)
	const infraRow = "(infra)"
	infras := make([]*analysis.Infra, len(pkgs))
	for i, p := range pkgs {
		infras[i] = analysis.NewInfra(p.Fset, p.Files, p.Pkg, p.Info)
		start := time.Now()
		infras[i].Prime()
		totals[infraRow] += time.Since(start)
	}
	for _, az := range registry.All() {
		single := []*analysis.Analyzer{az}
		for i := range pkgs {
			start := time.Now()
			if _, err := analysis.RunPackageWithInfra(single, infras[i]); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			totals[az.Name] += time.Since(start)
		}
	}
	names := make([]string, 0, len(totals))
	var total time.Duration
	for name, d := range totals {
		names = append(names, name)
		total += d
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]] != totals[names[j]] {
			return totals[names[i]] > totals[names[j]]
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		fmt.Printf("%-12s %10.2fms\n", name, float64(totals[name].Microseconds())/1000)
	}
	fmt.Printf("%-12s %10.2fms (%d packages)\n", "total", float64(total.Microseconds())/1000, len(pkgs))
	return 0
}
