// Command benchjson converts `go test -bench` output into a small JSON
// summary suitable for checking into the repository and diffing across
// commits (BENCH_compile.json).
//
// It reads benchmark text on stdin and writes JSON to -o (default
// stdout). With -baseline pointing at a file of raw benchmark text from
// an earlier commit, each entry also reports the baseline numbers and
// the speedup / allocation-reduction ratios. Both inputs are plain
// `go test -bench -benchmem` output, so the same two files feed
// benchstat directly for confidence intervals:
//
//	go test -run '^$' -bench Compile -benchmem -count 3 . > new.txt
//	benchjson -baseline bench/compile_seed.txt -o BENCH_compile.json < new.txt
//	benchstat bench/compile_seed.txt new.txt
//
// With -check it becomes a CI regression gate instead: benchmarks on
// stdin are compared against -baseline and the command exits non-zero
// when any benchmark present in both regressed beyond -max-regress× in
// ns/op (best-of-N on both sides, so one noisy run does not trip it):
//
//	go test -run '^$' -bench . -count 3 ./internal/core | benchjson -check -baseline bench/compile_seed.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchName matches a benchmark result line's first field, with or
// without the -GOMAXPROCS suffix.
var benchName = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?$`)

// sample is one benchmark run's measurements.
type sample struct {
	nsPerOp     float64
	bytesPerOp  int64
	allocsPerOp int64
}

// stats aggregates repeated runs of one benchmark. Min is the
// conventional "best of N" (least scheduler noise); Mean is reported
// alongside for context.
type stats struct {
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"` // minimum across runs
	MeanNsPerOp float64 `json:"mean_ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`  // minimum across runs
	AllocsPerOp int64   `json:"allocs_per_op"` // minimum across runs
}

type entry struct {
	Name     string  `json:"name"`
	Current  stats   `json:"current"`
	Baseline *stats  `json:"baseline,omitempty"`
	Speedup  float64 `json:"speedup,omitempty"`         // baseline ns / current ns
	AllocCut float64 `json:"alloc_reduction,omitempty"` // baseline allocs / current allocs
}

type output struct {
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

// parse reads `go test -bench -benchmem` result lines. Measurement
// columns come in "<value> <unit>" pairs; unknown units (custom
// b.ReportMetric columns such as rows/s) are skipped, so the known
// columns are found wherever they sit on the line.
func parse(r io.Reader) (map[string][]sample, error) {
	out := make(map[string][]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		m := benchName.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count — not a result line
		}
		var s sample
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				ns, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", sc.Text(), err)
				}
				s.nsPerOp = ns
				sawNs = true
			case "B/op":
				s.bytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				s.allocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if !sawNs {
			continue
		}
		out[m[1]] = append(out[m[1]], s)
	}
	return out, sc.Err()
}

func summarize(samples []sample) stats {
	st := stats{Runs: len(samples)}
	var sum float64
	for i, s := range samples {
		sum += s.nsPerOp
		if i == 0 || s.nsPerOp < st.NsPerOp {
			st.NsPerOp = s.nsPerOp
		}
		if i == 0 || s.bytesPerOp < st.BytesPerOp {
			st.BytesPerOp = s.bytesPerOp
		}
		if i == 0 || s.allocsPerOp < st.AllocsPerOp {
			st.AllocsPerOp = s.allocsPerOp
		}
	}
	st.MeanNsPerOp = sum / float64(len(samples))
	return st
}

func run(current io.Reader, baselinePath, note string, w io.Writer) error {
	cur, err := parse(current)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	var base map[string][]sample
	if baselinePath != "" {
		f, err := os.Open(baselinePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if base, err = parse(f); err != nil {
			return err
		}
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	out := output{Note: note}
	for _, name := range names {
		e := entry{Name: name, Current: summarize(cur[name])}
		if bs, ok := base[name]; ok {
			b := summarize(bs)
			e.Baseline = &b
			if e.Current.NsPerOp > 0 {
				e.Speedup = b.NsPerOp / e.Current.NsPerOp
			}
			if e.Current.AllocsPerOp > 0 {
				e.AllocCut = float64(b.AllocsPerOp) / float64(e.Current.AllocsPerOp)
			}
		}
		out.Benchmarks = append(out.Benchmarks, e)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// checkRegressions is the CI regression gate: it compares benchmarks on
// stdin against the baseline file and fails when any benchmark present
// in both regressed beyond maxRegress× in ns/op. Both sides are reduced
// best-of-N first, so a single noisy repetition does not trip the gate;
// benchmarks without a baseline entry are reported but never fail.
func checkRegressions(current io.Reader, baselinePath string, maxRegress float64, w io.Writer) error {
	if baselinePath == "" {
		return fmt.Errorf("benchjson: -check needs -baseline")
	}
	cur, err := parse(current)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	f, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := parse(f)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var failed []string
	checked := 0
	for _, name := range names {
		c := summarize(cur[name])
		bs, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "  new  %-28s %14.0f ns/op (no baseline)\n", name, c.NsPerOp)
			continue
		}
		b := summarize(bs)
		if !(b.NsPerOp > 0) {
			continue // malformed baseline line; nothing to gate against
		}
		checked++
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > maxRegress {
			status = "FAIL"
			failed = append(failed, name)
		}
		fmt.Fprintf(w, "  %-4s %-28s %14.0f ns/op vs %14.0f baseline (%.2fx, limit %.1fx)\n",
			status, name, c.NsPerOp, b.NsPerOp, ratio, maxRegress)
	}
	if checked == 0 {
		return fmt.Errorf("benchjson: -check matched no benchmarks against %s", baselinePath)
	}
	if len(failed) > 0 {
		return fmt.Errorf("benchjson: %d benchmark(s) regressed beyond %.1fx: %s",
			len(failed), maxRegress, strings.Join(failed, ", "))
	}
	return nil
}

func main() {
	baseline := flag.String("baseline", "", "raw `go test -bench` text from the comparison commit")
	outPath := flag.String("o", "", "output path (default stdout)")
	note := flag.String("note", "compile-path benchmarks; ns_per_op/bytes/allocs are best-of-N", "note embedded in the JSON")
	check := flag.Bool("check", false, "regression gate: fail when stdin regresses beyond -max-regress vs -baseline")
	maxRegress := flag.Float64("max-regress", 2.0, "allowed ns/op ratio (current/baseline) before -check fails")
	flag.Parse()

	if *check {
		if err := checkRegressions(os.Stdin, *baseline, *maxRegress, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(os.Stdin, *baseline, *note, w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
