package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const currentText = `
goos: linux
BenchmarkFocusedCompile-8     	     240	   4935294 ns/op	 2946194 B/op	   38643 allocs/op
BenchmarkFocusedCompile-8     	     243	   5566165 ns/op	 2946195 B/op	   38643 allocs/op
BenchmarkOptimizeChain3       	  649627	      1703 ns/op	     480 B/op	       5 allocs/op
some unrelated table row | 42 |
PASS
`

const baselineText = `
BenchmarkFocusedCompile     	      10	  23046968 ns/op	17931412 B/op	  216575 allocs/op
BenchmarkOptimizeChain3     	   84358	     13527 ns/op	   13440 B/op	     149 allocs/op
`

func TestRunProducesSpeedups(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.txt")
	if err := os.WriteFile(base, []byte(baselineText), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(strings.NewReader(currentText), base, "test", &buf); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(out.Benchmarks))
	}
	fc := out.Benchmarks[0]
	if fc.Name != "FocusedCompile" || fc.Current.Runs != 2 {
		t.Fatalf("unexpected first entry %+v", fc)
	}
	// Best-of-N picks the minimum ns/op; speedup is baseline/current.
	if fc.Current.NsPerOp != 4935294 {
		t.Errorf("ns_per_op = %v, want min 4935294", fc.Current.NsPerOp)
	}
	if want := 23046968.0 / 4935294.0; math.Abs(fc.Speedup-want) > 1e-9 {
		t.Errorf("speedup = %v, want %v", fc.Speedup, want)
	}
	if want := 216575.0 / 38643.0; math.Abs(fc.AllocCut-want) > 1e-9 {
		t.Errorf("alloc_reduction = %v, want %v", fc.AllocCut, want)
	}
}

func TestParseSkipsCustomMetricColumns(t *testing.T) {
	// b.ReportMetric inserts extra "<value> <unit>" pairs (the exec
	// benchmarks report rows/s); the known columns must still parse.
	text := "BenchmarkExecJoinVector8 	      96	  11741582 ns/op	   4909145 rows/s	 5078643 B/op	     426 allocs/op\n"
	got, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	samples := got["ExecJoinVector8"]
	if len(samples) != 1 {
		t.Fatalf("parsed %d samples, want 1", len(samples))
	}
	s := samples[0]
	if s.nsPerOp != 11741582 || s.bytesPerOp != 5078643 || s.allocsPerOp != 426 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestRunWithoutBaseline(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(currentText), "", "test", &buf); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for _, e := range out.Benchmarks {
		if e.Baseline != nil || e.Speedup != 0 {
			t.Fatalf("unexpected baseline data without -baseline: %+v", e)
		}
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("no benchmarks here\n"), "", "test", &bytes.Buffer{}); err == nil {
		t.Fatal("expected an error on input without benchmark lines")
	}
}

func writeBaseline(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckPassesWithinLimit(t *testing.T) {
	// currentText is dramatically faster than baselineText, so the 2x
	// gate passes; benchmarks absent from the baseline are reported but
	// never fail.
	var buf bytes.Buffer
	err := checkRegressions(strings.NewReader(currentText), writeBaseline(t, baselineText), 2.0, &buf)
	if err != nil {
		t.Fatalf("check failed on an improvement: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "ok   FocusedCompile") {
		t.Errorf("report missing ok line:\n%s", buf.String())
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	// Swap roles: the slow seed text as "current" against the fast text
	// as baseline is a >2x regression on both benchmarks.
	var buf bytes.Buffer
	err := checkRegressions(strings.NewReader(baselineText), writeBaseline(t, currentText), 2.0, &buf)
	if err == nil {
		t.Fatalf("check passed a >2x regression:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "regressed beyond") {
		t.Errorf("unexpected error: %v", err)
	}
	if !strings.Contains(buf.String(), "FAIL FocusedCompile") {
		t.Errorf("report missing FAIL line:\n%s", buf.String())
	}
}

func TestCheckBestOfNDampsNoise(t *testing.T) {
	// One noisy 5x repetition next to two in-family ones must not trip
	// the gate: both sides reduce best-of-N before comparing.
	current := `
BenchmarkOptimizeChain3   	  100000	     70000 ns/op	   13440 B/op	     149 allocs/op
BenchmarkOptimizeChain3   	  100000	     14000 ns/op	   13440 B/op	     149 allocs/op
BenchmarkOptimizeChain3   	  100000	     14100 ns/op	   13440 B/op	     149 allocs/op
`
	var buf bytes.Buffer
	err := checkRegressions(strings.NewReader(current), writeBaseline(t, baselineText), 2.0, &buf)
	if err != nil {
		t.Fatalf("noisy repetition tripped the gate: %v\n%s", err, buf.String())
	}
}

func TestCheckRequiresOverlapAndBaseline(t *testing.T) {
	if err := checkRegressions(strings.NewReader(currentText), "", 2.0, &bytes.Buffer{}); err == nil {
		t.Fatal("check without -baseline should fail")
	}
	disjoint := "BenchmarkSomethingElse 	 10	 100 ns/op\n"
	err := checkRegressions(strings.NewReader(disjoint), writeBaseline(t, baselineText), 2.0, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "matched no benchmarks") {
		t.Fatalf("disjoint benchmark sets should fail loudly, got %v", err)
	}
}
