// Command bouquet runs the plan-bouquet reproduction: it regenerates the
// paper's tables and figures, explains compiled bouquets, and executes
// single bouquet runs with full traces.
//
// Usage:
//
//	bouquet <experiment> [flags]
//
// Experiments: table1 table2 table3 fig3 fig4 fig14 fig15 fig16 fig17
// fig18 fig19 overheads modelerror ablate all
//
// Other commands:
//
//	bouquet sql "<query>"                parse, compile and describe a bouquet
//	bouquet explain <workload>           compile and describe a bouquet
//	bouquet run <workload> -qa s1,s2,…   trace one bouquet execution
//	bouquet list                         list available workloads
//	bouquet corpus <gen|check|bless|stats>  plan-regression corpus gate
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/anorexic"
	"repro/internal/catalog"
	"repro/internal/contour"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dimreduce"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/posp"
	"repro/internal/report"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "corpus" {
		// The corpus verb carries its own flag set (different seed default,
		// -dir/-sample/-out knobs), so dispatch before the generic parse.
		if err := corpusMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "bouquet:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	res := fs.Int("res", 0, "grid resolution per dimension (0 = per-dimensionality default)")
	lambda := fs.Float64("lambda", anorexic.DefaultLambda.F(), "anorexic reduction threshold")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 42, "data generation seed (table3)")
	qaFlag := fs.String("qa", "", "comma-separated actual selectivities (run)")
	optimized := fs.Bool("optimized", true, "include the optimized driver")
	artifact := fs.String("o", "", "artifact file to write (compile) or read (run)")
	concrete := fs.Bool("concrete", false, "trace a concrete engine run instead of the abstract driver (trace)")
	nodes := fs.Bool("nodes", false, "print per-node operator stats for each executed step (trace)")

	args := os.Args[2:]
	var pos []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		pos = append(pos, args[0])
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	if err := run(cmd, pos, *res, *lambda, *workers, *seed, *qaFlag, *optimized, *artifact, *concrete, *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "bouquet:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bouquet <command> [flags]

experiments:
  table1 table2 table3 fig3 fig4 fig14 fig15 fig16 fig17 fig18 fig19
  overheads modelerror ablate verdict all

commands:
  sql "<query>"                 parse, compile and describe a textual query
  diagram <workload>            render a 2-D plan diagram with contours
  dims <workload>               probe per-dimension cost sensitivity (§8)
  compile <workload> -o FILE    compile a bouquet and persist the artifact
  run <workload> -o FILE ...    execute from a persisted artifact
  explain <workload>            compile and describe a bouquet
  run <workload> -qa s1,s2,...  trace one bouquet execution at q_a
  trace <workload> -qa ...      structured span timeline of one run
                                (-nodes: per-operator stats; -concrete:
                                 real engine run of HQ8a)
  list                          list available workloads
  corpus gen|check|bless|stats  plan-regression corpus: generate golden
                                baselines, semantically diff against them,
                                re-bless after intentional changes, or
                                print composition stats
                                (-dir D -seed N -count N -sample N -out F)

flags: -res N -lambda F -workers N -seed N -optimized=BOOL -concrete -nodes`)
}

func run(cmd string, pos []string, res int, lambda float64, workers int, seed int64, qaFlag string, optimized bool, artifact string, concrete, nodes bool) error {
	opts := report.Options{Res: res, Lambda: cost.Ratio(lambda), Workers: workers, SkipOptimized: !optimized}
	switch cmd {
	case "list":
		for _, w := range append(workload.All(2), workload.EQ(2)) {
			fmt.Printf("%-12s %-10s D=%d  %s\n", w.Name, w.Query.JoinGraphShape(), w.Query.Dims(), w.Query)
		}
		return nil

	case "fig3":
		t, err := report.Figure3(res)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil

	case "fig4":
		series, summary, err := report.Figure4(res)
		if err != nil {
			return err
		}
		fmt.Println(series)
		fmt.Println(summary)
		return nil

	case "table3":
		breakdown, summary, err := report.Table3(seed)
		if err != nil {
			return err
		}
		fmt.Println(breakdown)
		fmt.Println(summary)
		return nil

	case "fig19":
		tables, err := report.Figure19(res, workers)
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		return nil

	case "overheads":
		t, err := report.CompileOverheads(res)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil

	case "modelerror":
		w := workload.EQ(res)
		t, err := report.ModelingError(w, 0.4, []uint64{1, 2, 3}, workers)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil

	case "ablate":
		w := workload.DSQ96(res)
		lam, err := report.AblationLambda(w, []float64{-1, 0, 0.1, 0.2, 0.5, 1.0}, workers)
		if err != nil {
			return err
		}
		fmt.Println(lam)
		resTbl, err := report.AblationResolution("3D_DS_Q96", []int{4, 8, 12, 16}, workers)
		if err != nil {
			return err
		}
		fmt.Println(resTbl)
		ratio, err := report.AblationRatio(workload.EQ(res), []float64{1.3, 1.5, 2, 2.5, 3, 4}, workers)
		if err != nil {
			return err
		}
		fmt.Println(ratio)
		foc, err := report.FocusedScaling([]int{10, 20, 40, 80})
		if err != nil {
			return err
		}
		fmt.Println(foc)
		return nil

	case "table1", "table2", "fig14", "fig15", "fig16", "fig17", "fig18", "verdict", "all":
		evals, err := report.EvaluateAll(opts)
		if err != nil {
			return err
		}
		print := func(name string, t *report.Table) {
			if cmd == "all" || cmd == name {
				fmt.Println(t)
			}
		}
		print("table1", report.Table1(evals))
		print("table2", report.Table2(evals))
		print("fig14", report.Figure14(evals))
		print("fig15", report.Figure15(evals))
		for _, ev := range evals {
			if ev.Workload.Name == "5D_DS_Q19" {
				print("fig16", report.Figure16(ev))
			}
		}
		print("fig17", report.Figure17(evals))
		print("fig18", report.Figure18(evals))
		print("verdict", report.Verdict(evals))
		if cmd == "all" {
			return runRemaining(res, workers, seed)
		}
		return nil

	case "compile":
		if len(pos) != 1 || artifact == "" {
			return fmt.Errorf("compile needs a workload name and -o <file>")
		}
		_, b, err := compile(pos[0], res, lambda, workers)
		if err != nil {
			return err
		}
		f, err := os.Create(artifact)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := b.Save(f); err != nil {
			return err
		}
		fmt.Printf("compiled %s: %s -> %s\n", pos[0], b, artifact)
		return nil

	case "dims":
		if len(pos) != 1 {
			return fmt.Errorf("dims needs a workload name (try 'bouquet list')")
		}
		return dimSensitivities(pos[0], res)

	case "diagram":
		if len(pos) != 1 {
			return fmt.Errorf("diagram needs a 2-D workload name (try EQ2D)")
		}
		return renderDiagram(pos[0], res, workers)

	case "sql":
		if len(pos) != 1 {
			return fmt.Errorf(`sql needs one quoted query, e.g. bouquet sql "SELECT * FROM part WHERE part.p_retailprice < sel(0.1)?"`)
		}
		return sqlExplain(pos[0], res, lambda, workers)

	case "explain":
		if len(pos) != 1 {
			return fmt.Errorf("explain needs a workload name (try 'bouquet list')")
		}
		return explain(pos[0], res, lambda, workers)

	case "run":
		if len(pos) != 1 {
			return fmt.Errorf("run needs a workload name (try 'bouquet list')")
		}
		return traceRun(pos[0], res, lambda, workers, qaFlag, artifact)

	case "trace":
		if concrete {
			return traceCmd("", res, lambda, workers, qaFlag, optimized, true, nodes, seed)
		}
		if len(pos) != 1 {
			return fmt.Errorf("trace needs a workload name (try 'bouquet list'), or -concrete")
		}
		return traceCmd(pos[0], res, lambda, workers, qaFlag, optimized, false, nodes, seed)

	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func runRemaining(res, workers int, seed int64) error {
	t3a, t3b, err := report.Table3(seed)
	if err != nil {
		return err
	}
	fmt.Println(t3a)
	fmt.Println(t3b)
	f3, err := report.Figure3(res)
	if err != nil {
		return err
	}
	fmt.Println(f3)
	f4a, f4b, err := report.Figure4(res)
	if err != nil {
		return err
	}
	fmt.Println(f4a)
	fmt.Println(f4b)
	f19, err := report.Figure19(res, workers)
	if err != nil {
		return err
	}
	for _, t := range f19 {
		fmt.Println(t)
	}
	ov, err := report.CompileOverheads(res)
	if err != nil {
		return err
	}
	fmt.Println(ov)
	me, err := report.ModelingError(workload.EQ(res), 0.4, []uint64{1, 2, 3}, workers)
	if err != nil {
		return err
	}
	fmt.Println(me)
	return nil
}

func compile(name string, res int, lambda float64, workers int) (*workload.Workload, *core.Bouquet, error) {
	w, err := workload.ByName(name, res)
	if err != nil {
		return nil, nil, err
	}
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	b, err := core.Compile(opt, w.Space, core.CompileOptions{Lambda: cost.Ratio(lambda), Workers: workers})
	return w, b, err
}

func explain(name string, res int, lambda float64, workers int) error {
	w, b, err := compile(name, res, lambda, workers)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s (%s, model=%s)\n  %s\n", w.Name, w.Query.JoinGraphShape(), w.Model.Name, w.Query)
	describe(b)
	return nil
}

// sqlExplain parses a textual query against the TPC-H-shaped catalog,
// compiles its bouquet, and describes it.
func sqlExplain(text string, res int, lambda float64, workers int) error {
	cat := catalog.TPCHLike(1.0)
	q, err := sqlparse.Parse("sql", cat, text)
	if err != nil {
		return err
	}
	if q.Dims() == 0 {
		return fmt.Errorf("query has no error-prone predicates; mark at least one with a trailing '?'")
	}
	if res <= 0 {
		res = ess.DefaultResolution(q.Dims())
	}
	space, err := ess.NewSpace(q, []int{res})
	if err != nil {
		return err
	}
	opt := optimizer.New(cost.NewCoster(q, cost.Postgres()))
	b, err := core.Compile(opt, space, core.CompileOptions{Lambda: cost.Ratio(lambda), Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("parsed query (%s): %s\n", q.JoinGraphShape(), q)
	describe(b)
	return nil
}

// dimSensitivities probes each error dimension's cost impact on a coarse
// grid (§8's dimensionality-control analysis) and reports which dimensions
// a threshold of 0.5 would eliminate.
func dimSensitivities(name string, res int) error {
	w, err := workload.ByName(name, res)
	if err != nil {
		return err
	}
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	sens, err := dimreduce.Sensitivities(opt, w.Space, 3)
	if err != nil {
		return err
	}
	keep, drop := dimreduce.Partition(sens, 0.5)
	fmt.Printf("dimension sensitivities for %s (coarse 3-point probe):\n", w.Name)
	for _, sv := range sens {
		fmt.Printf("  dim %d (pred %d: %s)  max cost swing %.2fx\n",
			sv.Dim, sv.PredID, w.Query.Predicate(sv.PredID), sv.MaxRatio)
	}
	fmt.Printf("keep %v, eliminate %v (threshold 1.5x)\n", keep, drop)
	return nil
}

// renderDiagram prints a 2-D workload's plan diagram with the isocost
// contour staircase overlaid.
func renderDiagram(name string, res, workers int) error {
	w, err := workload.ByName(name, res)
	if err != nil {
		return err
	}
	if w.Space.Dims() != 2 {
		return fmt.Errorf("workload %s is %d-D; diagram rendering is 2-D only", name, w.Space.Dims())
	}
	opt := optimizer.New(cost.NewCoster(w.Query, w.Model))
	d := posp.Generate(opt, w.Space, workers)
	st := d.ComputeStats()
	fmt.Printf("region skew: largest %.0f%%, top-5 %.0f%%, gini %.2f\n",
		st.LargestRegion*100, st.Top5Share*100, st.Gini)
	cmin, cmax := d.CostBounds()
	ladder, err := contour.NewLadder(cmin, cmax, 2)
	if err != nil {
		return err
	}
	out, err := d.RenderASCII(nil, ladder.Steps)
	if err != nil {
		return err
	}
	fmt.Printf("%s\nplan diagram (letters = optimal plans, lowercase = isocost contour staircase):\n%s", d, out)
	return nil
}

func describe(b *core.Bouquet) {
	fmt.Printf("%s\n", b)
	fmt.Printf("Eq.8 bound: %.1f   theoretical 4(1+λ)ρ: %.1f\n\n", b.BoundMSO(), b.TheoreticalMSO())
	for _, c := range b.Contours {
		fmt.Printf("IC%-2d budget %-12.4g locations %-6d plans %v\n", c.K, c.Budget, len(c.Flats), c.PlanIDs)
	}
	fmt.Println("\nbouquet plans (costed at the space terminus):")
	sels := cost.Selectivities(b.Space.Sels(b.Space.Terminus()))
	for _, pid := range b.PlanIDs {
		fmt.Printf("P%d:\n%s", pid, b.Coster.Explain(b.Diagram.Plan(pid), sels))
	}
}

func traceRun(name string, res int, lambda float64, workers int, qaFlag, artifact string) error {
	var w *workload.Workload
	var b *core.Bouquet
	var err error
	if artifact != "" {
		// Load a precompiled artifact instead of compiling afresh.
		w, err = workload.ByName(name, res)
		if err != nil {
			return err
		}
		f, ferr := os.Open(artifact)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		b, err = core.Load(f, cost.NewCoster(w.Query, w.Model))
	} else {
		w, b, err = compile(name, res, lambda, workers)
	}
	if err != nil {
		return err
	}
	qa := w.Space.Terminus()
	if qaFlag != "" {
		parts := strings.Split(qaFlag, ",")
		if len(parts) != w.Space.Dims() {
			return fmt.Errorf("-qa needs %d values for %s", w.Space.Dims(), name)
		}
		qa = make(ess.Point, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("bad -qa value %q: %w", p, err)
			}
			qa[i] = v
		}
	}
	fmt.Printf("running %s at q_a=%v\n\nbasic driver:\n  %s\n", name, qa, b.RunBasic(qa))
	fmt.Printf("\noptimized driver:\n  %s\n", b.RunOptimized(qa))
	return nil
}
