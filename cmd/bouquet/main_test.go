package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout around f and returns what was printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestListCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("list", nil, 2, 0.2, 0, 42, "", true, "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EQ", "5D_DS_Q19", "chain", "star"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestExplainCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("explain", []string{"EQ"}, 20, 0.2, 0, 42, "", true, "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bouquet:", "Eq.8 bound", "IC1", "bouquet plans"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q in:\n%s", want, out)
		}
	}
}

func TestRunCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("run", []string{"EQ"}, 20, 0.2, 0, 42, "0.02", true, "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"basic driver:", "optimized driver:", "subopt="} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q in:\n%s", want, out)
		}
	}
}

func TestRunCommandBadQa(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("run", []string{"EQ"}, 10, 0.2, 0, 42, "0.1,0.2", true, "", false, false)
	}); err == nil || !strings.Contains(err.Error(), "needs 1 values") {
		t.Fatalf("dimension mismatch not rejected: %v", err)
	}
	if _, err := capture(t, func() error {
		return run("run", []string{"EQ"}, 10, 0.2, 0, 42, "zap", true, "", false, false)
	}); err == nil {
		t.Fatal("non-numeric -qa not rejected")
	}
}

func TestTraceCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("trace", []string{"EQ2D"}, 10, 0.2, 0, 42, "0.05,0.000002", true, "", false, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"span timeline", "contour", "exec", "learn", "done",
		"aggregate:", "wasted ratio", "· ", // per-node stat lines from -nodes
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q in:\n%s", want, out)
		}
	}
	// Dispatch rejects a missing workload unless -concrete is set.
	if _, err := capture(t, func() error {
		return run("trace", nil, 10, 0.2, 0, 42, "", true, "", false, false)
	}); err == nil {
		t.Fatal("trace without workload accepted")
	}
}

func TestTraceConcreteCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("trace", nil, 10, 0.2, 0, 42, "", false, "", true, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"traced concrete basic run", "span timeline", "out=", "aggregate:"} {
		if !strings.Contains(out, want) {
			t.Errorf("concrete trace output missing %q in:\n%s", want, out)
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("frobnicate", nil, 0, 0.2, 0, 42, "", true, "", false, false)
	}); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown command accepted: %v", err)
	}
}

func TestExplainNeedsWorkload(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("explain", nil, 0, 0.2, 0, 42, "", true, "", false, false)
	}); err == nil {
		t.Fatal("explain without workload accepted")
	}
	if _, err := capture(t, func() error {
		return run("explain", []string{"ghost"}, 0, 0.2, 0, 42, "", true, "", false, false)
	}); err == nil {
		t.Fatal("explain of unknown workload accepted")
	}
}

func TestFig3Command(t *testing.T) {
	out, err := capture(t, func() error {
		return run("fig3", nil, 25, 0.2, 0, 42, "", true, "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IC step") || !strings.Contains(out, "bouquet plan") {
		t.Errorf("fig3 output malformed:\n%s", out)
	}
}

func TestSQLCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("sql", []string{"SELECT * FROM part, lineitem WHERE part.p_retailprice < sel(0.1)? AND part.p_partkey = lineitem.l_partkey"}, 15, 0.2, 0, 42, "", true, "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"parsed query", "bouquet:", "Eq.8 bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("sql output missing %q", want)
		}
	}
}

func TestSQLCommandErrors(t *testing.T) {
	// No error-prone predicate.
	if _, err := capture(t, func() error {
		return run("sql", []string{"SELECT * FROM part WHERE part.p_retailprice < sel(0.1)"}, 10, 0.2, 0, 42, "", true, "", false, false)
	}); err == nil || !strings.Contains(err.Error(), "error-prone") {
		t.Fatalf("dimension-less sql accepted: %v", err)
	}
	// Parse error.
	if _, err := capture(t, func() error {
		return run("sql", []string{"SELEC nope"}, 10, 0.2, 0, 42, "", true, "", false, false)
	}); err == nil {
		t.Fatal("bad sql accepted")
	}
}

func TestDimsCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("dims", []string{"3D_DS_Q96"}, 4, 0.2, 0, 42, "", true, "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dimension sensitivities", "max cost swing", "keep"} {
		if !strings.Contains(out, want) {
			t.Errorf("dims output missing %q", want)
		}
	}
}

func TestDiagramCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("diagram", []string{"EQ2D"}, 10, 0.2, 0, 42, "", true, "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan diagram", "region skew", "gini"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram output missing %q", want)
		}
	}
	// Non-2-D workloads are rejected.
	if _, err := capture(t, func() error {
		return run("diagram", []string{"EQ"}, 10, 0.2, 0, 42, "", true, "", false, false)
	}); err == nil {
		t.Fatal("1-D diagram accepted")
	}
}

func TestCompileArtifactAndRunFromIt(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/eq.bouquet.json"
	if _, err := capture(t, func() error {
		return run("compile", []string{"EQ"}, 20, 0.2, 0, 42, "", true, path, false, false)
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run("run", []string{"EQ"}, 20, 0.2, 0, 42, "0.02", true, path, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "basic driver:") {
		t.Errorf("artifact run output malformed:\n%s", out)
	}
	// Missing artifact file errors cleanly.
	if _, err := capture(t, func() error {
		return run("run", []string{"EQ"}, 20, 0.2, 0, 42, "0.02", true, dir+"/ghost.json", false, false)
	}); err == nil {
		t.Fatal("missing artifact accepted")
	}
	// compile without -o rejected.
	if _, err := capture(t, func() error {
		return run("compile", []string{"EQ"}, 20, 0.2, 0, 42, "", true, "", false, false)
	}); err == nil {
		t.Fatal("compile without -o accepted")
	}
}
