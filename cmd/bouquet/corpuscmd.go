package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
)

// DefaultCorpusSeed seeds the checked-in corpus: the paper's publication
// date. Recorded in the manifest, so `check` and `bless` never need it.
const DefaultCorpusSeed = 20140622

// DefaultCorpusCount is the checked-in corpus size (the ISSUE's ≥500
// target).
const DefaultCorpusCount = 500

// corpusMain dispatches `bouquet corpus <gen|check|bless|stats>` with its
// own flag set: the corpus verb has a different seed default and knobs
// than the experiment commands.
func corpusMain(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("corpus needs a subcommand: gen, check, bless, or stats")
	}
	sub := args[0]
	fs := flag.NewFlagSet("corpus "+sub, flag.ExitOnError)
	dir := fs.String("dir", "testdata/corpus", "corpus directory")
	seed := fs.Int64("seed", DefaultCorpusSeed, "corpus master seed (gen only)")
	count := fs.Int("count", DefaultCorpusCount, "number of generated queries (gen only)")
	sample := fs.Int("sample", 0, "check only N evenly-spaced queries (0 = full corpus)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	out := fs.String("out", "", "also write the classified diff report to this file (check only)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	switch sub {
	case "gen":
		return corpusGen(*dir, corpus.Config{Seed: *seed, Count: *count}, *workers)
	case "check":
		return corpusCheck(*dir, *sample, *workers, *out)
	case "bless":
		m, err := corpus.LoadManifest(*dir)
		if err != nil {
			return fmt.Errorf("bless regenerates from the existing manifest; none found: %w", err)
		}
		return corpusGen(*dir, corpus.Config{Seed: m.Seed, Count: m.Count}, *workers)
	case "stats":
		return corpusStats(*dir)
	default:
		return fmt.Errorf("unknown corpus subcommand %q (want gen, check, bless, or stats)", sub)
	}
}

// corpusGen generates the corpus from scratch and writes it under dir.
func corpusGen(dir string, cfg corpus.Config, workers int) error {
	baselines, err := corpus.Generate(cfg, workers, nil)
	if err != nil {
		return err
	}
	if err := corpus.Save(dir, cfg, baselines); err != nil {
		return err
	}
	fmt.Printf("corpus: wrote %d baselines (seed %d) to %s\n", len(baselines), cfg.Seed, dir)
	return nil
}

// corpusCheck regenerates the corpus (or an evenly-spaced sample of it)
// from the manifest seed and semantically diffs it against the golden
// baselines, printing one matcher-parseable line per drift.
func corpusCheck(dir string, sample, workers int, out string) error {
	m, golden, err := corpus.Load(dir)
	if err != nil {
		return err
	}
	idx := corpus.SampleIndices(m.Count, sample)
	candidate, err := corpus.Generate(corpus.Config{Seed: m.Seed, Count: m.Count}, workers, idx)
	if err != nil {
		return err
	}
	subset := make([]corpus.Baseline, 0, len(idx))
	for _, i := range idx {
		subset = append(subset, golden[i])
	}
	drifts := corpus.Diff(subset, candidate)
	if len(drifts) == 0 {
		fmt.Printf("corpus: %d/%d queries checked, no drift\n", len(idx), m.Count)
		if out != "" {
			return os.WriteFile(out, nil, 0o644)
		}
		return nil
	}
	report := corpus.Report(filepath.ToSlash(dir), drifts)
	fmt.Print(report)
	if out != "" {
		if werr := os.WriteFile(out, []byte(report), 0o644); werr != nil {
			return werr
		}
	}
	return fmt.Errorf("%d of %d checked queries drifted from the golden baselines (intentional change? run `make corpus-bless`)",
		len(drifts), len(idx))
}

// corpusStats prints the composition table and MSO distribution the
// EXPERIMENTS.md corpus section is built from.
func corpusStats(dir string) error {
	m, baselines, err := corpus.Load(dir)
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d queries, seed %d, %d shards\n\n", m.Count, m.Seed,
		(m.Count+m.ShardSize-1)/m.ShardSize)
	fmt.Printf("%-8s %4s %-10s %5s\n", "geometry", "dims", "model", "count")
	for _, row := range corpus.Composition(baselines) {
		fmt.Printf("%-8s %4d %-10s %5d\n", row.Geometry, row.Dims, row.Model, row.Count)
	}
	q := corpus.MSOQuantiles(baselines)
	fmt.Printf("\nMSO bound distribution: min %.2f  p25 %.2f  median %.2f  p75 %.2f  max %.2f\n",
		q[0], q[1], q[2], q[3], q[4])
	return nil
}
