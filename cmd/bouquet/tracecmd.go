package main

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/trace"
	"repro/internal/workload"
)

// traceCmd executes one bouquet run with structured tracing enabled and
// renders the span timeline. The default is the abstract driver (simulated
// on the cost surfaces, per-node stats from the model's realized
// cardinalities); -concrete runs the HQ8a runtime workload on the Volcano
// engine with real tuple counters.
func traceCmd(name string, res int, lambda float64, workers int, qaFlag string, optimized, concrete, nodes bool, seed int64) error {
	if concrete {
		return traceConcrete(optimized, nodes, seed)
	}
	w, b, err := compile(name, res, lambda, workers)
	if err != nil {
		return err
	}
	qa, err := parseQA(w, qaFlag)
	if err != nil {
		return err
	}
	rec := trace.New(0)
	driver := "basic"
	var e core.Execution
	if optimized {
		driver = "optimized"
		e, err = b.RunOptimizedTraced(context.Background(), qa, nil, rec)
	} else {
		e, err = b.RunBasicTraced(context.Background(), qa, nil, rec)
	}
	if err != nil {
		return err
	}
	fmt.Printf("traced %s run of %s at q_a=%v\n  %s\n\n", driver, name, qa, e)
	renderTrace(rec, nodes)
	return nil
}

// traceConcrete runs the HQ8a runtime workload on the execution engine
// with tracing enabled: the exec spans carry real per-operator tuple
// counters, and spill/budget-abort spans come from the engine itself.
func traceConcrete(optimized, nodes bool, seed int64) error {
	rw, err := workload.HQ8a(seed)
	if err != nil {
		return err
	}
	opt := optimizer.New(cost.NewCoster(rw.Query, rw.Model))
	b, err := core.Compile(opt, rw.Space, core.CompileOptions{Lambda: 0.2})
	if err != nil {
		return err
	}
	eng, err := exec.NewEngine(rw.Query, rw.DB, rw.Model, rw.Bindings)
	if err != nil {
		return err
	}
	r := &core.ConcreteRunner{B: b, Engine: eng, Trace: trace.New(0)}
	driver := "basic"
	var out core.ConcreteExecution
	if optimized {
		driver = "optimized"
		out = r.RunOptimized()
	} else {
		out = r.RunBasic()
	}
	fmt.Printf("traced concrete %s run of HQ8a (seed %d):\n%s\n", driver, seed, out.Explain())
	renderTrace(r.Trace, nodes)
	return nil
}

// parseQA resolves the -qa flag against w's space, defaulting to the
// terminus.
func parseQA(w *workload.Workload, qaFlag string) (ess.Point, error) {
	qa := w.Space.Terminus()
	if qaFlag == "" {
		return qa, nil
	}
	parts := strings.Split(qaFlag, ",")
	if len(parts) != w.Space.Dims() {
		return nil, fmt.Errorf("-qa needs %d values for %s", w.Space.Dims(), w.Name)
	}
	qa = make(ess.Point, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -qa value %q: %w", p, err)
		}
		qa[i] = v
	}
	return qa, nil
}

// renderTrace prints a human-readable step timeline of the recorded spans
// followed by the run's aggregate summary. With nodes set, each exec span
// also lists its per-operator stats.
func renderTrace(rec *trace.Recorder, nodes bool) {
	spans := rec.Spans()
	fmt.Printf("span timeline (%d spans, %d dropped):\n", len(spans), rec.Dropped())
	fmt.Printf("  %-4s %-12s %-4s %-5s %-4s %-5s %12s %12s %9s %10s %s\n",
		"seq", "kind", "ic", "plan", "dim", "pred", "budget", "spent", "rows", "wall", "")
	for _, s := range spans {
		mark := ""
		switch {
		case s.Kind == trace.KindExec && s.Completed:
			mark = "done"
		case s.Kind == trace.KindExec:
			mark = "jettisoned"
		case s.Kind == trace.KindLearn:
			mark = fmt.Sprintf("sel=%.3g", s.Sel)
			if s.Completed {
				mark += " exact"
			}
		}
		fmt.Printf("  %-4d %-12s %-4d %-5d %-4d %-5d %12.4g %12.4g %9d %10s %s\n",
			s.Seq, s.Kind, s.Contour, s.PlanID, s.Dim, s.Pred,
			s.Budget, s.Spent, s.Rows, wallString(s.WallNanos), mark)
		if nodes && s.Kind == trace.KindExec {
			for _, n := range s.Nodes {
				state := "live"
				if n.Starved {
					state = "starved"
				} else if n.Done {
					state = "done"
				}
				rel := n.Relation
				if rel != "" {
					rel = "(" + rel + ")"
				}
				fmt.Printf("       · %-18s %-10s out=%-9d in=%-9d matches=%-9d cost=%.4g [%s]\n",
					n.Op+rel, passString(n.Pass), n.Out, n.In, n.Matches, n.EstCost, state)
			}
		}
	}
	a := metrics.Aggregate(spans)
	fmt.Printf("\naggregate: %d execs (%d completed), %d aborts, %d spills, %d learns (%d exact)\n",
		a.Execs, a.Completed, a.Aborts, a.Spills, a.Learns, a.ExactLearns)
	fmt.Printf("cost: useful %.4g, wasted %.4g (wasted ratio %.2f); wall %s (max step %s); rows %d\n",
		a.UsefulCost, a.WastedCost, a.WastedRatio(),
		wallString(a.WallNanos), wallString(a.MaxStepWallNanos), a.Rows)
}

func wallString(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

func passString(pass []trace.PredCount) string {
	if len(pass) == 0 {
		return ""
	}
	parts := make([]string, len(pass))
	for i, p := range pass {
		parts[i] = fmt.Sprintf("p%d:%d", p.Pred, p.Count)
	}
	return strings.Join(parts, ",")
}
