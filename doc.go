// Package repro is a from-scratch Go reproduction of "Plan Bouquets: Query
// Processing without Selectivity Estimation" (Dutt & Haritsa, SIGMOD 2014).
//
// The library lives under internal/: the paper's contribution in
// internal/core (bouquet compilation and the basic/optimized run-time
// drivers), and every substrate it depends on — catalog, query model,
// PCM cost models, plan trees, a System-R optimizer with selectivity
// injection, ESS grids, POSP plan diagrams, isocost contours, anorexic
// reduction, the SEER baseline, a Volcano executor with budgeted/spilled
// execution, synthetic data generation, robustness metrics, benchmark
// workloads, and the experiment harness regenerating every table and
// figure of the paper's evaluation.
//
// Entry points: cmd/bouquet (CLI), examples/ (runnable walkthroughs), and
// bench_test.go in this directory (one benchmark per paper table/figure).
// See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
