GO ?= go
BIN := bin

# COVER_FLOOR is the minimum acceptable total statement coverage for
# `make cover` (the repo sits at ~81% today; the floor leaves a little
# headroom for run-to-run variation, not for new untested code).
COVER_FLOOR := 78.0

.PHONY: build test vet race fuzz lint lint-fixtures lint-timing lint-budget fmt-check ci cover bench-compile bench-compile-smoke bench-check bench-exec bench-exec-smoke corpus-check corpus-smoke corpus-bless corpus-stats

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fuzz runs the fuzz targets (SQL parser, CFG builder, escape analyzer)
# for a short, CI-friendly budget each. Run one by hand with a longer
# -fuzztime to explore further.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse
	$(GO) test -fuzz=FuzzBuild -fuzztime=30s ./internal/analysis/cfg
	$(GO) test -fuzz=FuzzEscape -fuzztime=30s ./internal/analysis/escape

# lint builds the repository's own analyzer suite and runs it through the
# go vet driver. CI invokes this same target, so local and CI findings
# cannot diverge.
lint:
	$(GO) build -o $(BIN)/bouquetvet ./cmd/bouquetvet
	$(GO) vet -vettool=$(abspath $(BIN)/bouquetvet) ./...

# lint-fixtures exercises the analyzer suite's own tests — every
# analyzer's positive/clean/suppressed fixtures plus the bouquetvet
# driver's dual-mode acceptance tests. CI runs it as its own quick job
# so a fixture-only change gets a verdict without the full gate.
lint-fixtures:
	$(GO) test ./internal/analysis/... ./cmd/bouquetvet

# lint-timing prints cumulative per-analyzer wall time over the repo,
# slowest first — the data source for attributing lint-budget failures.
lint-timing:
	$(GO) build -o $(BIN)/bouquetvet ./cmd/bouquetvet
	$(BIN)/bouquetvet -timing ./...

# LINT_BUDGET_SECONDS is 3x the cold-cache `make lint` wall time measured
# when the escape-analysis pair (allocbound, maporder) landed (~47s cold,
# ~2s warm; shared call-graph/CFG infra keeps the marginal analyzer
# cheap). The gate exists to catch pathological analyzer slowdowns (a
# fixpoint that stops converging, an accidental quadratic walk), not
# routine drift; raise it deliberately if the suite legitimately grows.
LINT_BUDGET_SECONDS := 145

lint-budget:
	@start=$$(date +%s); $(MAKE) lint; end=$$(date +%s); \
	elapsed=$$((end - start)); \
	echo "lint wall time: $${elapsed}s (budget $(LINT_BUDGET_SECONDS)s)"; \
	if [ $$elapsed -gt $(LINT_BUDGET_SECONDS) ]; then \
		echo "lint exceeded its $(LINT_BUDGET_SECONDS)s budget; run 'make lint-timing' to find the analyzer that pays for it"; \
		exit 1; \
	fi

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-compile measures the compile hot path (POSP generation, focused
# compile, raw optimizer DP) with allocation stats, then converts the raw
# output into BENCH_compile.json with speedups against the checked-in
# seed baseline (bench/compile_seed.txt). Both text files are plain
# `go test -bench` output, so `benchstat bench/compile_seed.txt
# bin/bench_compile.txt` works on the same data.
bench-compile:
	@mkdir -p $(BIN)
	$(GO) test -run '^$$' -bench 'BenchmarkFocusedCompile$$|BenchmarkAblationResolution$$' \
		-benchmem -count 3 -timeout 30m . | tee $(BIN)/bench_compile.txt
	$(GO) test -run '^$$' -bench 'BenchmarkOptimizeChain3$$|BenchmarkOptimizeBranch8$$|BenchmarkAbstractCost$$' \
		-benchmem -count 3 ./internal/optimizer | tee -a $(BIN)/bench_compile.txt
	$(GO) build -o $(BIN)/benchjson ./cmd/benchjson
	$(BIN)/benchjson -baseline bench/compile_seed.txt -o BENCH_compile.json \
		-note "compile-path benchmarks; ns_per_op/bytes/allocs are best-of-N" < $(BIN)/bench_compile.txt
	@echo "wrote BENCH_compile.json"

# bench-compile-smoke is the CI variant: single short iterations, no JSON
# emission — it exists to catch benchmarks that no longer compile or
# crash, not to measure.
bench-compile-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFocusedCompile$$' -benchtime 1x -benchmem -timeout 10m .
	$(GO) test -run '^$$' -bench 'BenchmarkOptimize' -benchtime 1x -benchmem ./internal/optimizer

# bench-exec measures executor throughput — the Volcano engine against
# the vectorized engine at 1 and 8 morsel workers on a 400k-row
# three-way join (plus the aggregate pipeline), and the whole-bouquet
# run with operator-state reuse on and off — and converts the raw
# output into BENCH_exec.json with speedups against the checked-in seed
# baselines (bench/exec_seed.txt + bench/bouquet_seed.txt).
bench-exec:
	@mkdir -p $(BIN)
	$(GO) test -run '^$$' -bench 'BenchmarkExecJoin|BenchmarkExecAggregate' \
		-benchmem -count 3 -timeout 30m ./internal/exec | tee $(BIN)/bench_exec.txt
	$(GO) test -run '^$$' -bench 'BenchmarkBouquetRun$$' \
		-benchmem -count 3 -timeout 30m ./internal/core | tee -a $(BIN)/bench_exec.txt
	$(GO) build -o $(BIN)/benchjson ./cmd/benchjson
	@cat bench/exec_seed.txt bench/bouquet_seed.txt > $(BIN)/exec_baseline.txt
	$(BIN)/benchjson -baseline $(BIN)/exec_baseline.txt -o BENCH_exec.json \
		-note "executor and bouquet-run benchmarks; ns_per_op/bytes/allocs are best-of-N" < $(BIN)/bench_exec.txt
	@echo "wrote BENCH_exec.json"

# bench-exec-smoke is the CI variant: single short iterations on both
# engines plus the multi-step bouquet run, so a benchmark that no longer
# compiles or crashes fails fast.
bench-exec-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkExecJoinVolcano$$|BenchmarkExecJoinVector8$$' \
		-benchtime 1x -benchmem ./internal/exec
	$(GO) test -run '^$$' -bench 'BenchmarkBouquetRun$$' -benchtime 1x -benchmem ./internal/core

# bench-check is the CI regression gate: re-measure the seeded compile,
# executor, and bouquet-run benchmarks (3 repetitions, best-of-N) and
# fail when any of them regressed beyond 2x ns/op against the checked-in
# seed baselines.
bench-check:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkFocusedCompile$$' -benchmem -count 3 -timeout 30m . > $(BIN)/bench_check.txt
	$(GO) test -run '^$$' -bench 'BenchmarkOptimizeChain3$$|BenchmarkOptimizeBranch8$$' \
		-benchmem -count 3 ./internal/optimizer >> $(BIN)/bench_check.txt
	$(BIN)/benchjson -check -max-regress 2.0 -baseline bench/compile_seed.txt < $(BIN)/bench_check.txt
	$(GO) test -run '^$$' -bench 'BenchmarkExecJoinVector8$$|BenchmarkExecJoinVolcano$$' \
		-benchmem -count 3 -timeout 30m ./internal/exec > $(BIN)/bench_check_exec.txt
	$(BIN)/benchjson -check -max-regress 2.0 -baseline bench/exec_seed.txt < $(BIN)/bench_check_exec.txt
	$(GO) test -run '^$$' -bench 'BenchmarkBouquetRun$$' \
		-benchmem -count 3 -timeout 30m ./internal/core > $(BIN)/bench_check_bouquet.txt
	$(BIN)/benchjson -check -max-regress 2.0 -baseline bench/bouquet_seed.txt < $(BIN)/bench_check_bouquet.txt

# cover writes an atomic-mode coverage profile for the whole repo and
# fails when total statement coverage drops below COVER_FLOOR. CI uploads
# the resulting profile as an artifact.
cover:
	@mkdir -p $(BIN)
	$(GO) test -coverprofile=$(BIN)/coverage.out -covermode=atomic ./...
	@total=$$($(GO) tool cover -func=$(BIN)/coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# CORPUS_SAMPLE is the query count for the corpus-smoke gate inside
# `make ci` (analogous to COVER_FLOOR: a documented knob, overridable as
# `make corpus-smoke CORPUS_SAMPLE=100`). The full 500-query check runs in
# CI's dedicated corpus job and via `make corpus-check`.
CORPUS_SAMPLE := 40

# CORPUS_DIR holds the golden plan-regression baselines (manifest + JSON
# shards); see internal/corpus and docs/ARCHITECTURE.md.
CORPUS_DIR := testdata/corpus

# corpus-check regenerates every corpus query from the manifest seed and
# semantically diffs the result against the golden baselines, failing with
# classified drift lines (`<shard>: <id>: [<class>] <detail>`). The report
# also lands in $(BIN)/corpus_diff.txt, which CI uploads on failure.
corpus-check:
	@mkdir -p $(BIN)
	$(GO) run ./cmd/bouquet corpus check -dir $(CORPUS_DIR) -out $(BIN)/corpus_diff.txt

# corpus-smoke is the `make ci` variant: an evenly-spaced CORPUS_SAMPLE
# subset, seconds instead of the full sweep.
corpus-smoke:
	@mkdir -p $(BIN)
	$(GO) run ./cmd/bouquet corpus check -dir $(CORPUS_DIR) -sample $(CORPUS_SAMPLE) -out $(BIN)/corpus_diff.txt

# corpus-bless regenerates the golden baselines in place after an
# intentional behavioral change. Review the resulting shard diff before
# committing — it is the behavioral change log.
corpus-bless:
	$(GO) run ./cmd/bouquet corpus bless -dir $(CORPUS_DIR)

# corpus-stats prints the composition table and MSO distribution backing
# the EXPERIMENTS.md corpus section.
corpus-stats:
	$(GO) run ./cmd/bouquet corpus stats -dir $(CORPUS_DIR)

# ci mirrors the CI workflow's main job exactly — .github/workflows/ci.yml
# invokes this target, so local `make ci` and CI cannot diverge.
ci: fmt-check vet build test race lint bench-compile-smoke bench-exec-smoke corpus-smoke
