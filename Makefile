GO ?= go
BIN := bin

.PHONY: build test race lint fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/server/... ./internal/core/... ./cmd/bouquetd/...

# lint builds the repository's own analyzer suite and runs it through the
# go vet driver. CI invokes this same target, so local and CI findings
# cannot diverge.
lint:
	$(GO) build -o $(BIN)/bouquetvet ./cmd/bouquetvet
	$(GO) vet -vettool=$(abspath $(BIN)/bouquetvet) ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check build test lint
