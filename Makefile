GO ?= go
BIN := bin

.PHONY: build test race fuzz lint fmt-check ci bench-compile bench-compile-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs the parser fuzz target for a short, CI-friendly budget. Run
# it by hand with a longer -fuzztime to explore further.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse

# lint builds the repository's own analyzer suite and runs it through the
# go vet driver. CI invokes this same target, so local and CI findings
# cannot diverge.
lint:
	$(GO) build -o $(BIN)/bouquetvet ./cmd/bouquetvet
	$(GO) vet -vettool=$(abspath $(BIN)/bouquetvet) ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-compile measures the compile hot path (POSP generation, focused
# compile, raw optimizer DP) with allocation stats, then converts the raw
# output into BENCH_compile.json with speedups against the checked-in
# seed baseline (bench/compile_seed.txt). Both text files are plain
# `go test -bench` output, so `benchstat bench/compile_seed.txt
# bin/bench_compile.txt` works on the same data.
bench-compile:
	@mkdir -p $(BIN)
	$(GO) test -run '^$$' -bench 'BenchmarkFocusedCompile$$|BenchmarkAblationResolution$$' \
		-benchmem -count 3 -timeout 30m . | tee $(BIN)/bench_compile.txt
	$(GO) test -run '^$$' -bench 'BenchmarkOptimizeChain3$$|BenchmarkOptimizeBranch8$$|BenchmarkAbstractCost$$' \
		-benchmem -count 3 ./internal/optimizer | tee -a $(BIN)/bench_compile.txt
	$(GO) build -o $(BIN)/benchjson ./cmd/benchjson
	$(BIN)/benchjson -baseline bench/compile_seed.txt -o BENCH_compile.json < $(BIN)/bench_compile.txt
	@echo "wrote BENCH_compile.json"

# bench-compile-smoke is the CI variant: single short iterations, no JSON
# emission — it exists to catch benchmarks that no longer compile or
# crash, not to measure.
bench-compile-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFocusedCompile$$' -benchtime 1x -benchmem -timeout 10m .
	$(GO) test -run '^$$' -bench 'BenchmarkOptimize' -benchtime 1x -benchmem ./internal/optimizer

ci: fmt-check build test lint
