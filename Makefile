GO ?= go
BIN := bin

.PHONY: build test race fuzz lint fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs the parser fuzz target for a short, CI-friendly budget. Run
# it by hand with a longer -fuzztime to explore further.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse

# lint builds the repository's own analyzer suite and runs it through the
# go vet driver. CI invokes this same target, so local and CI findings
# cannot diverge.
lint:
	$(GO) build -o $(BIN)/bouquetvet ./cmd/bouquetvet
	$(GO) vet -vettool=$(abspath $(BIN)/bouquetvet) ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check build test lint
